//! A second deterministic group service: a fixed-sequencer replicated
//! key-value store (**SMR-KV**).
//!
//! NewTOP's GC object is one instance of the machine shape the fail-signal
//! transformation lifts; this module provides a *different* one, so the suite
//! can demonstrate that the wrapper path is truly service-agnostic
//! (**FS-SMR** in the scenario harness).  The service totally orders client
//! commands through a fixed sequencer — the asymmetric scheme of the paper's
//! §2 discussion, stripped to its essence:
//!
//! * a member receiving a client command forwards it to the sequencer
//!   (member 0) as a [`SmrPeerMsg::Submit`];
//! * the sequencer assigns a global sequence number and multicasts the
//!   resulting [`SmrPeerMsg::Ordered`] record to every peer;
//! * every member applies `Ordered` records strictly in global order to its
//!   local [`KvStore`] replica and raises a [`SmrDeliver`] upcall to its
//!   local application.
//!
//! # Request batching
//!
//! Clients may submit a whole [`SmrClientMsg::Batch`] of commands at once.
//! A batch travels the ordering round as **one frame** end to end — one
//! [`SmrPeerMsg::SubmitBatch`] to the sequencer, one
//! [`SmrPeerMsg::OrderedBatch`] multicast, one [`SmrUpcall::Batch`] upcall —
//! so under the fail-signal wrapper one signature covers all N commands
//! (every machine output is exactly one signed candidate frame).  Each
//! batched command still gets its own global order index and its own
//! at-most-once guard, so batched and unbatched runs apply the identical
//! command sequence.
//!
//! [`SequencedKv`] implements [`DeterministicMachine`] and honours the R1
//! determinism contract: it consults no clocks or random sources, and its
//! outputs are a pure function of the input sequence.  Identical replicas fed
//! identical inputs therefore produce byte-identical outputs — exactly what
//! the fail-signal wrapper pair compares.

use std::collections::BTreeMap;

use fs_common::codec::{Decoder, Encoder, Wire};
use fs_common::error::CodecError;
use fs_common::id::MemberId;
use fs_common::time::SimDuration;
use fs_common::Bytes;

use crate::command::{AppStateMachine, KvStore};
use crate::machine::{DeterministicMachine, Endpoint, MachineInput, MachineOutput};

/// A versioned membership view of the SMR group.
///
/// The member list is ordered; the first entry is the sequencer.  Every view
/// transition is itself an ordered entry in the global command stream (a
/// [`SmrPeerMsg::ViewChange`] record), so all replicas install view `id + 1`
/// at exactly the same point of the delivery order — the survivors *agree*
/// on when a member rejoined, not merely observe it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupView {
    /// Monotonically increasing view number; the initial view is 0.
    pub id: u64,
    /// The members of this view, in group order (first entry sequences).
    pub members: Vec<MemberId>,
}

impl GroupView {
    /// The initial view (id 0) over `members`.
    pub fn initial(members: Vec<MemberId>) -> Self {
        Self { id: 0, members }
    }

    /// The member acting as sequencer in this view.
    pub fn sequencer(&self) -> MemberId {
        *self
            .members
            .first()
            .expect("a view needs at least one member")
    }

    /// True when `member` belongs to this view.
    pub fn contains(&self, member: MemberId) -> bool {
        self.members.contains(&member)
    }

    /// The successor view after `member` (re)joins: the id is bumped and the
    /// member appended if absent.  A rejoin of a current member keeps the
    /// member list and still bumps the id — the new view number marks the
    /// agreed rejoin epoch.
    pub fn joined(&self, member: MemberId) -> Self {
        let mut members = self.members.clone();
        if !members.contains(&member) {
            members.push(member);
        }
        Self {
            id: self.id + 1,
            members,
        }
    }
}

impl Wire for GroupView {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.id);
        enc.put_u32(self.members.len() as u32);
        for member in &self.members {
            enc.put_member(*member);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let id = dec.get_u64()?;
        let len = dec.get_u32()?;
        let mut members = Vec::with_capacity(len.min(4096) as usize);
        for _ in 0..len {
            members.push(dec.get_member()?);
        }
        Ok(Self { id, members })
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + 4 * self.members.len()
    }
}

fn put_pairs(enc: &mut Encoder, pairs: &[(MemberId, u64)]) {
    enc.put_u32(pairs.len() as u32);
    for (member, seq) in pairs {
        enc.put_member(*member);
        enc.put_u64(*seq);
    }
}

fn get_pairs(dec: &mut Decoder<'_>) -> Result<Vec<(MemberId, u64)>, CodecError> {
    let len = dec.get_u32()?;
    let mut pairs = Vec::with_capacity(len.min(4096) as usize);
    for _ in 0..len {
        pairs.push((dec.get_member()?, dec.get_u64()?));
    }
    Ok(pairs)
}

/// A client command as submitted by the local application: the client's own
/// sequence number plus the encoded [`crate::command::KvCommand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrRequest {
    /// The submitting member's per-member sequence number.
    pub seq: u64,
    /// The encoded application command.
    pub command: Bytes,
}

impl Wire for SmrRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.seq);
        enc.put_bytes(&self.command);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            seq: dec.get_u64()?,
            command: dec.get_bytes_shared()?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + self.command.len()
    }
}

/// The frame a local application sends to its service machine: either one
/// command or a client-side batch of consecutive commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmrClientMsg {
    /// A single command submission.
    Request(SmrRequest),
    /// A batch of commands with consecutive per-member sequence numbers
    /// starting at `first_seq` (command `i` has sequence `first_seq + i`).
    Batch {
        /// The sequence number of the first command in the batch.
        first_seq: u64,
        /// The encoded application commands, in sequence order.
        commands: Vec<Bytes>,
    },
    /// The local process came back up (warm restart or cold replacement):
    /// fetch missed state from the peers and announce the rejoin to the
    /// sequencer so it is ordered as a view transition.
    Recover,
}

impl Wire for SmrClientMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SmrClientMsg::Request(request) => {
                enc.put_u8(0);
                request.encode(enc);
            }
            SmrClientMsg::Batch {
                first_seq,
                commands,
            } => {
                enc.put_u8(1);
                enc.put_u64(*first_seq);
                commands.encode(enc);
            }
            SmrClientMsg::Recover => enc.put_u8(2),
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(SmrClientMsg::Request(SmrRequest::decode(dec)?)),
            1 => Ok(SmrClientMsg::Batch {
                first_seq: dec.get_u64()?,
                commands: Vec::<Bytes>::decode(dec)?,
            }),
            2 => Ok(SmrClientMsg::Recover),
            t => Err(CodecError::UnknownTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            SmrClientMsg::Request(request) => 1 + request.encoded_len(),
            SmrClientMsg::Batch { commands, .. } => 1 + 8 + commands.encoded_len(),
            SmrClientMsg::Recover => 1,
        }
    }
}

/// The delivery upcall raised to the local application once a command has
/// been applied in global order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrDeliver {
    /// The global order index assigned by the sequencer.
    pub global: u64,
    /// The member that submitted the command.
    pub origin: MemberId,
    /// The origin's per-member sequence number.
    pub seq: u64,
    /// The encoded application response.
    pub response: Bytes,
}

impl Wire for SmrDeliver {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.global);
        enc.put_member(self.origin);
        enc.put_u64(self.seq);
        enc.put_bytes(&self.response);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            global: dec.get_u64()?,
            origin: dec.get_member()?,
            seq: dec.get_u64()?,
            response: dec.get_bytes_shared()?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + 8 + 4 + self.response.len()
    }
}

/// One applied command inside a [`SmrDeliverBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrDeliverEntry {
    /// The member that submitted the command.
    pub origin: MemberId,
    /// The origin's per-member sequence number.
    pub seq: u64,
    /// The encoded application response.
    pub response: Bytes,
}

impl Wire for SmrDeliverEntry {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_member(self.origin);
        enc.put_u64(self.seq);
        enc.put_bytes(&self.response);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            origin: dec.get_member()?,
            seq: dec.get_u64()?,
            response: dec.get_bytes_shared()?,
        })
    }
    fn encoded_len(&self) -> usize {
        4 + 8 + 4 + self.response.len()
    }
}

/// A batched delivery upcall: entry `i` was applied at global order index
/// `first_global + i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrDeliverBatch {
    /// The global order index of the first entry.
    pub first_global: u64,
    /// The applied commands, in global order.
    pub entries: Vec<SmrDeliverEntry>,
}

impl Wire for SmrDeliverBatch {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.first_global);
        self.entries.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            first_global: dec.get_u64()?,
            entries: Vec::<SmrDeliverEntry>::decode(dec)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + self.entries.encoded_len()
    }
}

/// An installed view transition, raised to the local application at the
/// exact delivery-order position the transition was sequenced at.
///
/// On a member that just rejoined, its own view upcall doubles as the
/// catch-up-complete signal: applying the transition at `global` implies the
/// whole history up to `global` has been applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrViewInstall {
    /// The global order index the transition occupies.
    pub global: u64,
    /// The installed view.
    pub view: GroupView,
}

impl Wire for SmrViewInstall {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.global);
        self.view.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            global: dec.get_u64()?,
            view: GroupView::decode(dec)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + self.view.encoded_len()
    }
}

/// The frame a service machine sends up to its local application: one
/// delivery, or one frame covering a whole applied batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmrUpcall {
    /// A single applied command.
    Deliver(SmrDeliver),
    /// Several commands applied back to back by one machine step.
    Batch(SmrDeliverBatch),
    /// A membership view transition was applied at its global order slot.
    View(SmrViewInstall),
}

impl Wire for SmrUpcall {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SmrUpcall::Deliver(deliver) => {
                enc.put_u8(0);
                deliver.encode(enc);
            }
            SmrUpcall::Batch(batch) => {
                enc.put_u8(1);
                batch.encode(enc);
            }
            SmrUpcall::View(install) => {
                enc.put_u8(2);
                install.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(SmrUpcall::Deliver(SmrDeliver::decode(dec)?)),
            1 => Ok(SmrUpcall::Batch(SmrDeliverBatch::decode(dec)?)),
            2 => Ok(SmrUpcall::View(SmrViewInstall::decode(dec)?)),
            t => Err(CodecError::UnknownTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            SmrUpcall::Deliver(deliver) => deliver.encoded_len(),
            SmrUpcall::Batch(batch) => batch.encoded_len(),
            SmrUpcall::View(install) => install.encoded_len(),
        }
    }
}

/// One ordered command inside a [`SmrPeerMsg::OrderedBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrOrderedEntry {
    /// The origin's per-member sequence number.
    pub seq: u64,
    /// The encoded application command.
    pub command: Bytes,
}

impl Wire for SmrOrderedEntry {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.seq);
        enc.put_bytes(&self.command);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            seq: dec.get_u64()?,
            command: dec.get_bytes_shared()?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + self.command.len()
    }
}

/// Messages exchanged between the service machines of different members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmrPeerMsg {
    /// A command forwarded from its origin to the sequencer.
    Submit {
        /// The submitting member.
        origin: MemberId,
        /// The origin's per-member sequence number.
        seq: u64,
        /// The encoded application command.
        command: Bytes,
    },
    /// An ordered record multicast by the sequencer.
    Ordered {
        /// The global order index.
        global: u64,
        /// The member that submitted the command.
        origin: MemberId,
        /// The origin's per-member sequence number.
        seq: u64,
        /// The encoded application command.
        command: Bytes,
    },
    /// A client batch forwarded from its origin to the sequencer in one
    /// frame (command `i` has sequence `first_seq + i`).
    SubmitBatch {
        /// The submitting member.
        origin: MemberId,
        /// The sequence number of the first command in the batch.
        first_seq: u64,
        /// The encoded application commands, in sequence order.
        commands: Vec<Bytes>,
    },
    /// A batch of ordered records multicast by the sequencer in one frame:
    /// entry `i` holds global order index `first_global + i`.
    OrderedBatch {
        /// The global order index of the first entry.
        first_global: u64,
        /// The member that submitted every command in the batch.
        origin: MemberId,
        /// The ordered commands with their per-member sequence numbers.
        entries: Vec<SmrOrderedEntry>,
    },
    /// A recovering member asking a peer for its applied state.  **Any**
    /// member can serve this (state transfer does not depend on the
    /// sequencer being up); peers always answer so the requester leaves
    /// recovery even when it missed nothing.
    CatchUpRequest {
        /// The recovering member.
        member: MemberId,
        /// The requester's current view number.
        view_id: u64,
        /// The requester's applied-prefix frontier (`next_apply`).
        have_applied: u64,
    },
    /// A full state-transfer snapshot answering a [`SmrPeerMsg::CatchUpRequest`].
    Snapshot {
        /// The responder's installed view.
        view: GroupView,
        /// The responder's *assignment frontier*: one past the highest
        /// global index it knows to be assigned (applied or still buffered).
        /// A recovering sequencer resumes ordering above the maximum
        /// frontier it hears, so it never re-assigns a used index.
        next_global: u64,
        /// The responder's applied-prefix frontier.
        next_apply: u64,
        /// The responder's at-most-once guard (`(origin, seq)` pairs ordered
        /// so far), so a recovering sequencer keeps filtering duplicates.
        ordered_seq: Vec<(MemberId, u64)>,
        /// The encoded [`KvStore`] snapshot.
        store: Bytes,
        /// The full delivery log up to `next_apply`.
        delivered: Vec<(MemberId, u64)>,
    },
    /// A recovered member announcing itself to the sequencer, which orders
    /// the rejoin as a [`SmrPeerMsg::ViewChange`] entry.
    Rejoin {
        /// The rejoining member.
        member: MemberId,
    },
    /// A view transition multicast by the sequencer with its own global
    /// order index — a config-change command in the ordered stream.
    ViewChange {
        /// The global order index the transition occupies.
        global: u64,
        /// The successor view to install at that point.
        view: GroupView,
    },
}

impl Wire for SmrPeerMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SmrPeerMsg::Submit {
                origin,
                seq,
                command,
            } => {
                enc.put_u8(0);
                enc.put_member(*origin);
                enc.put_u64(*seq);
                enc.put_bytes(command);
            }
            SmrPeerMsg::Ordered {
                global,
                origin,
                seq,
                command,
            } => {
                enc.put_u8(1);
                enc.put_u64(*global);
                enc.put_member(*origin);
                enc.put_u64(*seq);
                enc.put_bytes(command);
            }
            SmrPeerMsg::SubmitBatch {
                origin,
                first_seq,
                commands,
            } => {
                enc.put_u8(2);
                enc.put_member(*origin);
                enc.put_u64(*first_seq);
                commands.encode(enc);
            }
            SmrPeerMsg::OrderedBatch {
                first_global,
                origin,
                entries,
            } => {
                enc.put_u8(3);
                enc.put_u64(*first_global);
                enc.put_member(*origin);
                entries.encode(enc);
            }
            SmrPeerMsg::CatchUpRequest {
                member,
                view_id,
                have_applied,
            } => {
                enc.put_u8(4);
                enc.put_member(*member);
                enc.put_u64(*view_id);
                enc.put_u64(*have_applied);
            }
            SmrPeerMsg::Snapshot {
                view,
                next_global,
                next_apply,
                ordered_seq,
                store,
                delivered,
            } => {
                enc.put_u8(5);
                view.encode(enc);
                enc.put_u64(*next_global);
                enc.put_u64(*next_apply);
                put_pairs(enc, ordered_seq);
                enc.put_bytes(store);
                put_pairs(enc, delivered);
            }
            SmrPeerMsg::Rejoin { member } => {
                enc.put_u8(6);
                enc.put_member(*member);
            }
            SmrPeerMsg::ViewChange { global, view } => {
                enc.put_u8(7);
                enc.put_u64(*global);
                view.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(SmrPeerMsg::Submit {
                origin: dec.get_member()?,
                seq: dec.get_u64()?,
                command: dec.get_bytes_shared()?,
            }),
            1 => Ok(SmrPeerMsg::Ordered {
                global: dec.get_u64()?,
                origin: dec.get_member()?,
                seq: dec.get_u64()?,
                command: dec.get_bytes_shared()?,
            }),
            2 => Ok(SmrPeerMsg::SubmitBatch {
                origin: dec.get_member()?,
                first_seq: dec.get_u64()?,
                commands: Vec::<Bytes>::decode(dec)?,
            }),
            3 => Ok(SmrPeerMsg::OrderedBatch {
                first_global: dec.get_u64()?,
                origin: dec.get_member()?,
                entries: Vec::<SmrOrderedEntry>::decode(dec)?,
            }),
            4 => Ok(SmrPeerMsg::CatchUpRequest {
                member: dec.get_member()?,
                view_id: dec.get_u64()?,
                have_applied: dec.get_u64()?,
            }),
            5 => Ok(SmrPeerMsg::Snapshot {
                view: GroupView::decode(dec)?,
                next_global: dec.get_u64()?,
                next_apply: dec.get_u64()?,
                ordered_seq: get_pairs(dec)?,
                store: dec.get_bytes_shared()?,
                delivered: get_pairs(dec)?,
            }),
            6 => Ok(SmrPeerMsg::Rejoin {
                member: dec.get_member()?,
            }),
            7 => Ok(SmrPeerMsg::ViewChange {
                global: dec.get_u64()?,
                view: GroupView::decode(dec)?,
            }),
            t => Err(CodecError::UnknownTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            SmrPeerMsg::Submit { command, .. } => 1 + 4 + 8 + 4 + command.len(),
            SmrPeerMsg::Ordered { command, .. } => 1 + 8 + 4 + 8 + 4 + command.len(),
            SmrPeerMsg::SubmitBatch { commands, .. } => 1 + 4 + 8 + commands.encoded_len(),
            SmrPeerMsg::OrderedBatch { entries, .. } => 1 + 8 + 4 + entries.encoded_len(),
            SmrPeerMsg::CatchUpRequest { .. } => 1 + 4 + 8 + 8,
            SmrPeerMsg::Snapshot {
                view,
                ordered_seq,
                store,
                delivered,
                ..
            } => {
                1 + view.encoded_len()
                    + 8
                    + 8
                    + (4 + 12 * ordered_seq.len())
                    + (4 + store.len())
                    + (4 + 12 * delivered.len())
            }
            SmrPeerMsg::Rejoin { .. } => 1 + 4,
            SmrPeerMsg::ViewChange { view, .. } => 1 + 8 + view.encoded_len(),
        }
    }
}

/// The sequenced replicated key-value machine of one group member.
///
/// Satisfies the paper's requirement **R1**: a deterministic (Mealy) state
/// machine whose outputs depend only on the sequence of inputs, never on
/// clocks, randomness or scheduling — which is what makes it liftable to an
/// FS process by the generic fail-signal wrapper.
#[derive(Debug, Clone)]
pub struct SequencedKv {
    member: MemberId,
    /// The currently installed membership view (first member sequences).
    view: GroupView,
    /// Next global index the sequencer will assign.
    next_global: u64,
    /// Next global index this replica will apply.
    next_apply: u64,
    /// Ordered records received ahead of `next_apply`.
    pending: BTreeMap<u64, Pending>,
    /// Every `(origin, seq)` ordered so far (sequencer-side at-most-once
    /// guard; a set rather than a high-water mark so that submissions
    /// arriving out of order are still each ordered exactly once).
    ordered_seq: std::collections::BTreeSet<(MemberId, u64)>,
    store: KvStore,
    delivered: Vec<(MemberId, u64)>,
    /// True between a [`SmrClientMsg::Recover`] and the first
    /// [`SmrPeerMsg::Snapshot`] reply.  While set, a recovering *sequencer*
    /// must not assign global indices (a cold replacement would restart the
    /// numbering at zero); submissions are parked in `backlog` instead.
    recovering: bool,
    /// Work parked while `recovering`, ordered once recovery completes.
    backlog: Vec<Backlog>,
}

/// An entry buffered at a global order slot ahead of `next_apply`.
#[derive(Debug, Clone)]
enum Pending {
    /// An ordinary ordered command.
    Cmd {
        origin: MemberId,
        seq: u64,
        command: Bytes,
    },
    /// A view transition occupying the slot.
    View(GroupView),
}

/// Sequencer work parked while recovering.
#[derive(Debug, Clone)]
enum Backlog {
    Cmd {
        origin: MemberId,
        seq: u64,
        command: Bytes,
    },
    Join(MemberId),
}

impl SequencedKv {
    /// Creates the machine replica of `member` in `group`.  Member 0 of the
    /// group (its first entry) acts as the sequencer.
    pub fn new(member: MemberId, group: Vec<MemberId>) -> Self {
        Self {
            member,
            view: GroupView::initial(group),
            next_global: 0,
            next_apply: 0,
            pending: BTreeMap::new(),
            ordered_seq: std::collections::BTreeSet::new(),
            store: KvStore::new(),
            delivered: Vec::new(),
            recovering: false,
            backlog: Vec::new(),
        }
    }

    /// The member this replica serves.
    pub fn member(&self) -> MemberId {
        self.member
    }

    /// The group membership of the currently installed view.
    pub fn group(&self) -> &[MemberId] {
        &self.view.members
    }

    /// The currently installed membership view.
    pub fn view(&self) -> &GroupView {
        &self.view
    }

    /// True when this replica is the current view's sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.member == self.view.sequencer()
    }

    /// True while this replica waits for a state-transfer snapshot.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// The `(origin, seq)` pairs applied so far, in global order.
    pub fn delivered(&self) -> &[(MemberId, u64)] {
        &self.delivered
    }

    /// A digest of the replicated store, for convergence checks.
    pub fn state_digest(&self) -> u64 {
        self.store.state_digest()
    }

    /// Sequencer-side ordering: assigns the next global index and returns the
    /// multicast record plus the local delivery.  While recovering, the
    /// submission is parked instead — a sequencer must re-learn the
    /// assignment frontier before it hands out indices.
    fn order(&mut self, origin: MemberId, seq: u64, command: Bytes) -> Vec<MachineOutput> {
        debug_assert!(self.is_sequencer());
        if self.recovering {
            self.backlog.push(Backlog::Cmd {
                origin,
                seq,
                command,
            });
            return Vec::new();
        }
        if !self.ordered_seq.insert((origin, seq)) {
            return Vec::new();
        }
        let global = self.next_global;
        self.next_global += 1;
        let record = SmrPeerMsg::Ordered {
            global,
            origin,
            seq,
            command: command.clone(),
        };
        let mut out = vec![MachineOutput::broadcast(record.to_wire())];
        self.pending.insert(
            global,
            Pending::Cmd {
                origin,
                seq,
                command,
            },
        );
        out.extend(self.apply_ready());
        out
    }

    /// Sequencer-side ordering of a client batch: every not-yet-ordered
    /// command gets the next consecutive global index, and the whole batch
    /// is multicast as a single [`SmrPeerMsg::OrderedBatch`] frame.
    fn order_batch(
        &mut self,
        origin: MemberId,
        first_seq: u64,
        commands: Vec<Bytes>,
    ) -> Vec<MachineOutput> {
        debug_assert!(self.is_sequencer());
        if self.recovering {
            for (i, command) in commands.into_iter().enumerate() {
                self.backlog.push(Backlog::Cmd {
                    origin,
                    seq: first_seq + i as u64,
                    command,
                });
            }
            return Vec::new();
        }
        let mut fresh = Vec::new();
        for (i, command) in commands.into_iter().enumerate() {
            let seq = first_seq + i as u64;
            if self.ordered_seq.insert((origin, seq)) {
                fresh.push(SmrOrderedEntry { seq, command });
            }
        }
        if fresh.is_empty() {
            return Vec::new();
        }
        let first_global = self.next_global;
        self.next_global += fresh.len() as u64;
        for (i, entry) in fresh.iter().enumerate() {
            self.pending.insert(
                first_global + i as u64,
                Pending::Cmd {
                    origin,
                    seq: entry.seq,
                    command: entry.command.clone(),
                },
            );
        }
        let record = SmrPeerMsg::OrderedBatch {
            first_global,
            origin,
            entries: fresh,
        };
        let mut out = vec![MachineOutput::broadcast(record.to_wire())];
        out.extend(self.apply_ready());
        out
    }

    /// Sequencer-side ordering of a member rejoin: builds the successor view
    /// and multicasts it as a [`SmrPeerMsg::ViewChange`] occupying its own
    /// global order slot, so every replica installs it at the same point.
    fn order_join(&mut self, member: MemberId) -> Vec<MachineOutput> {
        debug_assert!(self.is_sequencer());
        if self.recovering {
            self.backlog.push(Backlog::Join(member));
            return Vec::new();
        }
        let view = self.view.joined(member);
        let global = self.next_global;
        self.next_global += 1;
        let record = SmrPeerMsg::ViewChange {
            global,
            view: view.clone(),
        };
        let mut out = vec![MachineOutput::broadcast(record.to_wire())];
        self.pending.insert(global, Pending::View(view));
        out.extend(self.apply_ready());
        out
    }

    /// One past the highest global index this replica knows to be assigned,
    /// counting both applied entries and records still buffered in `pending`.
    fn assign_frontier(&self) -> u64 {
        let buffered = self.pending.keys().next_back().map_or(0, |g| g + 1);
        self.next_global.max(self.next_apply).max(buffered)
    }

    /// The state-transfer reply describing this replica's applied state.
    fn snapshot_msg(&self) -> SmrPeerMsg {
        SmrPeerMsg::Snapshot {
            view: self.view.clone(),
            next_global: self.assign_frontier(),
            next_apply: self.next_apply,
            ordered_seq: self.ordered_seq.iter().copied().collect(),
            store: self.store.snapshot(),
            delivered: self.delivered.clone(),
        }
    }

    /// Entry point for [`SmrClientMsg::Recover`]: ask every peer for its
    /// state and announce the rejoin so it is sequenced as a view change.
    fn start_recovery(&mut self) -> Vec<MachineOutput> {
        if self.view.members.len() < 2 {
            // A singleton group has nobody to catch up from (and nothing to
            // miss: with its only member down, nothing was ordered).
            return Vec::new();
        }
        self.recovering = true;
        let request = SmrPeerMsg::CatchUpRequest {
            member: self.member,
            view_id: self.view.id,
            have_applied: self.next_apply,
        };
        let mut out = vec![MachineOutput::broadcast(request.to_wire())];
        if self.is_sequencer() {
            // Our own rejoin is ordered once the snapshot restores the
            // assignment frontier.
            self.backlog.push(Backlog::Join(self.member));
        } else {
            let rejoin = SmrPeerMsg::Rejoin {
                member: self.member,
            };
            out.push(MachineOutput::to_peer(
                self.view.sequencer(),
                rejoin.to_wire(),
            ));
        }
        out
    }

    /// Installs a state-transfer snapshot if it is ahead of this replica,
    /// then resumes any parked sequencer work.  Every snapshot — installed
    /// or not — raises the assignment frontier, so a recovered sequencer
    /// never re-assigns a global index a peer has already seen.
    #[allow(clippy::too_many_arguments)]
    fn install_snapshot(
        &mut self,
        view: GroupView,
        next_global: u64,
        next_apply: u64,
        ordered_seq: Vec<(MemberId, u64)>,
        store: Bytes,
        delivered: Vec<(MemberId, u64)>,
    ) -> Vec<MachineOutput> {
        let was_recovering = self.recovering;
        self.recovering = false;
        self.next_global = self.next_global.max(next_global);
        let mut out = Vec::new();
        if next_apply > self.next_apply || view.id > self.view.id {
            match KvStore::restore(&store) {
                Ok(restored) => {
                    self.store = restored;
                    self.view = view;
                    self.next_apply = next_apply;
                    self.ordered_seq = ordered_seq.into_iter().collect();
                    self.delivered = delivered;
                    // Anything buffered below the installed frontier is
                    // already covered by the snapshot — including, possibly,
                    // the ViewChange record of our own rejoin.  Announce the
                    // installed view so the local application always gets
                    // its catch-up-complete signal, even when the snapshot
                    // swallowed the transition slot.
                    self.pending = self.pending.split_off(&self.next_apply);
                    if was_recovering {
                        let install = SmrViewInstall {
                            global: self.next_apply,
                            view: self.view.clone(),
                        };
                        out.push(MachineOutput::to_app(SmrUpcall::View(install).to_wire()));
                    }
                }
                // A malformed snapshot is ignored; another reply will serve.
                Err(_) => self.recovering = was_recovering,
            }
        }
        out.extend(self.apply_ready());
        if was_recovering && !self.recovering {
            out.extend(self.drain_backlog());
        }
        out
    }

    /// Orders everything parked while recovering, in arrival order.
    fn drain_backlog(&mut self) -> Vec<MachineOutput> {
        let parked = std::mem::take(&mut self.backlog);
        let mut out = Vec::new();
        for item in parked {
            match item {
                Backlog::Cmd {
                    origin,
                    seq,
                    command,
                } => out.extend(self.order(origin, seq, command)),
                Backlog::Join(member) => out.extend(self.order_join(member)),
            }
        }
        out
    }

    /// Applies every pending record whose global index is next in line.
    /// Runs of plain commands applied by one machine step go up in **one**
    /// frame — a single [`SmrUpcall::Deliver`], or one [`SmrUpcall::Batch`]
    /// when a batch (or a closed gap) applies several commands back to back;
    /// a view transition in the run closes the current frame, installs the
    /// view and raises its own [`SmrUpcall::View`] at the exact slot.
    fn apply_ready(&mut self) -> Vec<MachineOutput> {
        let mut out = Vec::new();
        let mut first_global = self.next_apply;
        let mut entries: Vec<SmrDeliverEntry> = Vec::new();
        while let Some(pending) = self.pending.remove(&self.next_apply) {
            let global = self.next_apply;
            self.next_apply += 1;
            match pending {
                Pending::Cmd {
                    origin,
                    seq,
                    command,
                } => {
                    let response = self.store.apply(&command);
                    self.delivered.push((origin, seq));
                    entries.push(SmrDeliverEntry {
                        origin,
                        seq,
                        response,
                    });
                }
                Pending::View(view) => {
                    Self::flush_frame(&mut out, first_global, &mut entries);
                    self.view = view.clone();
                    out.push(MachineOutput::to_app(
                        SmrUpcall::View(SmrViewInstall { global, view }).to_wire(),
                    ));
                    first_global = self.next_apply;
                }
            }
        }
        Self::flush_frame(&mut out, first_global, &mut entries);
        out
    }

    /// Closes a run of applied commands into one upcall frame.
    fn flush_frame(
        out: &mut Vec<MachineOutput>,
        first_global: u64,
        entries: &mut Vec<SmrDeliverEntry>,
    ) {
        match entries.len() {
            0 => {}
            1 => {
                let entry = entries.pop().expect("one entry");
                out.push(MachineOutput::to_app(
                    SmrUpcall::Deliver(SmrDeliver {
                        global: first_global,
                        origin: entry.origin,
                        seq: entry.seq,
                        response: entry.response,
                    })
                    .to_wire(),
                ));
            }
            _ => out.push(MachineOutput::to_app(
                SmrUpcall::Batch(SmrDeliverBatch {
                    first_global,
                    entries: std::mem::take(entries),
                })
                .to_wire(),
            )),
        }
    }
}

impl DeterministicMachine for SequencedKv {
    fn handle(&mut self, input: &MachineInput) -> Vec<MachineOutput> {
        match input.source {
            Endpoint::LocalApp => {
                let Ok(msg) = SmrClientMsg::from_wire(&input.bytes) else {
                    return Vec::new();
                };
                match msg {
                    SmrClientMsg::Request(request) => {
                        if self.is_sequencer() {
                            self.order(self.member, request.seq, request.command)
                        } else {
                            let submit = SmrPeerMsg::Submit {
                                origin: self.member,
                                seq: request.seq,
                                command: request.command,
                            };
                            vec![MachineOutput::to_peer(
                                self.view.sequencer(),
                                submit.to_wire(),
                            )]
                        }
                    }
                    SmrClientMsg::Batch {
                        first_seq,
                        commands,
                    } => {
                        if self.is_sequencer() {
                            self.order_batch(self.member, first_seq, commands)
                        } else {
                            let submit = SmrPeerMsg::SubmitBatch {
                                origin: self.member,
                                first_seq,
                                commands,
                            };
                            vec![MachineOutput::to_peer(
                                self.view.sequencer(),
                                submit.to_wire(),
                            )]
                        }
                    }
                    SmrClientMsg::Recover => self.start_recovery(),
                }
            }
            Endpoint::Peer(_) => match SmrPeerMsg::from_wire(&input.bytes) {
                Ok(SmrPeerMsg::Submit {
                    origin,
                    seq,
                    command,
                }) if self.is_sequencer() => self.order(origin, seq, command),
                Ok(SmrPeerMsg::SubmitBatch {
                    origin,
                    first_seq,
                    commands,
                }) if self.is_sequencer() => self.order_batch(origin, first_seq, commands),
                Ok(SmrPeerMsg::Ordered {
                    global,
                    origin,
                    seq,
                    command,
                }) if !self.is_sequencer() => {
                    if global >= self.next_apply {
                        self.pending.insert(
                            global,
                            Pending::Cmd {
                                origin,
                                seq,
                                command,
                            },
                        );
                    }
                    self.apply_ready()
                }
                Ok(SmrPeerMsg::OrderedBatch {
                    first_global,
                    origin,
                    entries,
                }) if !self.is_sequencer() => {
                    for (i, entry) in entries.into_iter().enumerate() {
                        let global = first_global + i as u64;
                        if global >= self.next_apply {
                            self.pending.insert(
                                global,
                                Pending::Cmd {
                                    origin,
                                    seq: entry.seq,
                                    command: entry.command,
                                },
                            );
                        }
                    }
                    self.apply_ready()
                }
                Ok(SmrPeerMsg::CatchUpRequest { member, .. }) if member != self.member => {
                    // Any member serves state transfer; the reply is sent
                    // unconditionally so the requester always leaves
                    // recovery, even when it missed nothing.
                    vec![MachineOutput::to_peer(
                        member,
                        self.snapshot_msg().to_wire(),
                    )]
                }
                Ok(SmrPeerMsg::Snapshot {
                    view,
                    next_global,
                    next_apply,
                    ordered_seq,
                    store,
                    delivered,
                }) => self.install_snapshot(
                    view,
                    next_global,
                    next_apply,
                    ordered_seq,
                    store,
                    delivered,
                ),
                Ok(SmrPeerMsg::Rejoin { member }) if self.is_sequencer() => self.order_join(member),
                Ok(SmrPeerMsg::ViewChange { global, view }) if !self.is_sequencer() => {
                    if global >= self.next_apply {
                        self.pending.insert(global, Pending::View(view));
                    }
                    self.apply_ready()
                }
                _ => Vec::new(),
            },
            // Environment inputs (e.g. converted fail-signals) carry no
            // commands for this service; they are acknowledged silently.
            Endpoint::Broadcast | Endpoint::Environment => Vec::new(),
        }
    }

    fn processing_cost(&self, _input: &MachineInput) -> SimDuration {
        SimDuration::from_micros(150)
    }

    fn name(&self) -> String {
        format!("smr-kv-{}", self.member.0)
    }

    fn delivered_log(&self) -> Option<Vec<(MemberId, u64)>> {
        Some(self.delivered.clone())
    }

    fn app_digest(&self) -> Option<u64> {
        Some(self.state_digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::KvCommand;
    use crate::machine::check_determinism;

    fn group(n: u32) -> Vec<MemberId> {
        (0..n).map(MemberId).collect()
    }

    fn put_command(member: MemberId, seq: u64) -> Bytes {
        KvCommand::Put {
            key: format!("m{}-{}", member.0, seq),
            value: vec![seq as u8],
        }
        .to_wire()
    }

    fn put(member: MemberId, seq: u64) -> Bytes {
        SmrClientMsg::Request(SmrRequest {
            seq,
            command: put_command(member, seq),
        })
        .to_wire()
    }

    /// Routes machine outputs through an in-order network until quiescence
    /// and returns the machines for inspection.
    fn run_to_quiescence(machines: &mut [SequencedKv], mut queue: Vec<(MemberId, MachineOutput)>) {
        while let Some((src, output)) = queue.pop() {
            match output.dest {
                Endpoint::Peer(dest) => {
                    let more = machines[dest.0 as usize]
                        .handle(&MachineInput::from_peer(src, output.bytes));
                    queue.extend(more.into_iter().map(|o| (dest, o)));
                }
                Endpoint::Broadcast => {
                    for dest in 0..machines.len() as u32 {
                        if MemberId(dest) == src {
                            continue;
                        }
                        let more = machines[dest as usize]
                            .handle(&MachineInput::from_peer(src, output.bytes.clone()));
                        queue.extend(more.into_iter().map(|o| (MemberId(dest), o)));
                    }
                }
                Endpoint::LocalApp | Endpoint::Environment => {}
            }
        }
    }

    #[test]
    fn commands_from_every_member_are_totally_ordered() {
        let mut machines: Vec<SequencedKv> = group(3)
            .into_iter()
            .map(|m| SequencedKv::new(m, group(3)))
            .collect();
        let mut queue = Vec::new();
        for seq in 0..4u64 {
            for m in 0..3u32 {
                let out =
                    machines[m as usize].handle(&MachineInput::from_app(put(MemberId(m), seq)));
                queue.extend(out.into_iter().map(|o| (MemberId(m), o)));
            }
        }
        run_to_quiescence(&mut machines, queue);
        assert_eq!(machines[0].delivered().len(), 12);
        for m in &machines[1..] {
            assert_eq!(m.delivered(), machines[0].delivered());
            assert_eq!(m.state_digest(), machines[0].state_digest());
        }
    }

    #[test]
    fn out_of_order_records_are_buffered() {
        let mut m = SequencedKv::new(MemberId(1), group(2));
        let late = SmrPeerMsg::Ordered {
            global: 1,
            origin: MemberId(0),
            seq: 1,
            command: KvCommand::Put {
                key: "b".into(),
                value: vec![2],
            }
            .to_wire(),
        };
        let early = SmrPeerMsg::Ordered {
            global: 0,
            origin: MemberId(0),
            seq: 0,
            command: KvCommand::Put {
                key: "a".into(),
                value: vec![1],
            }
            .to_wire(),
        };
        assert!(m
            .handle(&MachineInput::from_peer(MemberId(0), late.to_wire()))
            .is_empty());
        let out = m.handle(&MachineInput::from_peer(MemberId(0), early.to_wire()));
        assert_eq!(out.len(), 1, "closing the gap applies both in one frame");
        let upcall = SmrUpcall::from_wire(&out[0].bytes).unwrap();
        match upcall {
            SmrUpcall::Batch(batch) => {
                assert_eq!(batch.first_global, 0);
                assert_eq!(batch.entries.len(), 2);
                assert_eq!(batch.entries[0].seq, 0);
                assert_eq!(batch.entries[1].seq, 1);
            }
            other => panic!("expected a batched upcall, got {other:?}"),
        }
        assert_eq!(m.delivered(), &[(MemberId(0), 0), (MemberId(0), 1)]);
    }

    #[test]
    fn sequencer_filters_duplicate_submissions() {
        let mut seq = SequencedKv::new(MemberId(0), group(2));
        let submit = SmrPeerMsg::Submit {
            origin: MemberId(1),
            seq: 1,
            command: KvCommand::Put {
                key: "k".into(),
                value: vec![9],
            }
            .to_wire(),
        };
        let first = seq.handle(&MachineInput::from_peer(MemberId(1), submit.to_wire()));
        assert!(!first.is_empty());
        let dup = seq.handle(&MachineInput::from_peer(MemberId(1), submit.to_wire()));
        assert!(dup.is_empty(), "replayed submission must not re-order");
        assert_eq!(seq.delivered().len(), 1);
    }

    #[test]
    fn machine_is_deterministic() {
        let inputs: Vec<MachineInput> = (0..12u64)
            .map(|i| {
                if i % 3 == 0 {
                    MachineInput::from_app(put(MemberId(0), i))
                } else {
                    MachineInput::from_peer(
                        MemberId(1),
                        SmrPeerMsg::Submit {
                            origin: MemberId(1),
                            seq: i,
                            command: KvCommand::Put {
                                key: format!("k{i}"),
                                value: vec![i as u8],
                            }
                            .to_wire(),
                        }
                        .to_wire(),
                    )
                }
            })
            .collect();
        assert!(check_determinism(
            || SequencedKv::new(MemberId(0), group(2)),
            &inputs
        ));
    }

    #[test]
    fn wire_round_trips() {
        let req = SmrRequest {
            seq: 7,
            command: Bytes::from(&b"cmd"[..]),
        };
        assert_eq!(SmrRequest::from_wire(&req.to_wire()).unwrap(), req);
        assert_eq!(req.encoded_len(), req.to_wire().len());
        let del = SmrDeliver {
            global: 1,
            origin: MemberId(2),
            seq: 3,
            response: Bytes::from(&b"ok"[..]),
        };
        assert_eq!(SmrDeliver::from_wire(&del.to_wire()).unwrap(), del);
        assert_eq!(del.encoded_len(), del.to_wire().len());
        for msg in [
            SmrPeerMsg::Submit {
                origin: MemberId(1),
                seq: 4,
                command: Bytes::from(&b"c"[..]),
            },
            SmrPeerMsg::Ordered {
                global: 9,
                origin: MemberId(1),
                seq: 4,
                command: Bytes::from(&b"c"[..]),
            },
        ] {
            assert_eq!(SmrPeerMsg::from_wire(&msg.to_wire()).unwrap(), msg);
            assert_eq!(msg.encoded_len(), msg.to_wire().len());
        }
    }

    #[test]
    fn batched_wire_round_trips() {
        let client = SmrClientMsg::Request(SmrRequest {
            seq: 5,
            command: Bytes::from(&b"one"[..]),
        });
        assert_eq!(SmrClientMsg::from_wire(&client.to_wire()).unwrap(), client);
        assert_eq!(client.encoded_len(), client.to_wire().len());
        let batch = SmrClientMsg::Batch {
            first_seq: 10,
            commands: vec![Bytes::from(&b"a"[..]), Bytes::from(&b"bb"[..])],
        };
        assert_eq!(SmrClientMsg::from_wire(&batch.to_wire()).unwrap(), batch);
        assert_eq!(batch.encoded_len(), batch.to_wire().len());
        for msg in [
            SmrPeerMsg::SubmitBatch {
                origin: MemberId(2),
                first_seq: 3,
                commands: vec![Bytes::from(&b"x"[..]), Bytes::from(&b"yz"[..])],
            },
            SmrPeerMsg::OrderedBatch {
                first_global: 11,
                origin: MemberId(2),
                entries: vec![
                    SmrOrderedEntry {
                        seq: 3,
                        command: Bytes::from(&b"x"[..]),
                    },
                    SmrOrderedEntry {
                        seq: 4,
                        command: Bytes::from(&b"yz"[..]),
                    },
                ],
            },
        ] {
            assert_eq!(SmrPeerMsg::from_wire(&msg.to_wire()).unwrap(), msg);
            assert_eq!(msg.encoded_len(), msg.to_wire().len());
        }
        for upcall in [
            SmrUpcall::Deliver(SmrDeliver {
                global: 0,
                origin: MemberId(1),
                seq: 0,
                response: Bytes::from(&b"ok"[..]),
            }),
            SmrUpcall::Batch(SmrDeliverBatch {
                first_global: 4,
                entries: vec![
                    SmrDeliverEntry {
                        origin: MemberId(1),
                        seq: 6,
                        response: Bytes::from(&b"r1"[..]),
                    },
                    SmrDeliverEntry {
                        origin: MemberId(1),
                        seq: 7,
                        response: Bytes::from(&b"r2"[..]),
                    },
                ],
            }),
        ] {
            assert_eq!(SmrUpcall::from_wire(&upcall.to_wire()).unwrap(), upcall);
            assert_eq!(upcall.encoded_len(), upcall.to_wire().len());
        }
    }

    #[test]
    fn batch_orders_every_command_in_one_frame() {
        let mut machines: Vec<SequencedKv> = group(2)
            .into_iter()
            .map(|m| SequencedKv::new(m, group(2)))
            .collect();
        let batch = SmrClientMsg::Batch {
            first_seq: 0,
            commands: (0..4).map(|i| put_command(MemberId(0), i)).collect(),
        }
        .to_wire();
        let out = machines[0].handle(&MachineInput::from_app(batch));
        // One OrderedBatch broadcast + one batched local upcall.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].dest, Endpoint::Broadcast));
        assert!(matches!(
            SmrPeerMsg::from_wire(&out[0].bytes).unwrap(),
            SmrPeerMsg::OrderedBatch { first_global: 0, ref entries, .. } if entries.len() == 4
        ));
        assert!(matches!(out[1].dest, Endpoint::LocalApp));
        assert!(matches!(
            SmrUpcall::from_wire(&out[1].bytes).unwrap(),
            SmrUpcall::Batch(ref b) if b.entries.len() == 4
        ));
        run_to_quiescence(&mut machines, vec![(MemberId(0), out[0].clone())]);
        assert_eq!(machines[1].delivered(), machines[0].delivered());
        assert_eq!(machines[1].state_digest(), machines[0].state_digest());
    }

    #[test]
    fn batch_filters_already_ordered_commands() {
        let mut seq = SequencedKv::new(MemberId(0), group(2));
        let submit = SmrPeerMsg::Submit {
            origin: MemberId(1),
            seq: 1,
            command: put_command(MemberId(1), 1),
        };
        assert!(!seq
            .handle(&MachineInput::from_peer(MemberId(1), submit.to_wire()))
            .is_empty());
        // A batch overlapping the already ordered (origin 1, seq 1) only
        // orders the fresh commands.
        let batch = SmrPeerMsg::SubmitBatch {
            origin: MemberId(1),
            first_seq: 0,
            commands: (0..3).map(|i| put_command(MemberId(1), i)).collect(),
        };
        let out = seq.handle(&MachineInput::from_peer(MemberId(1), batch.to_wire()));
        assert!(matches!(
            SmrPeerMsg::from_wire(&out[0].bytes).unwrap(),
            SmrPeerMsg::OrderedBatch { ref entries, .. }
                if entries.iter().map(|e| e.seq).collect::<Vec<_>>() == vec![0, 2]
        ));
        assert_eq!(
            seq.delivered(),
            &[(MemberId(1), 1), (MemberId(1), 0), (MemberId(1), 2)]
        );
        // Replaying the whole batch is a no-op.
        assert!(seq
            .handle(&MachineInput::from_peer(MemberId(1), batch.to_wire()))
            .is_empty());
    }

    #[test]
    fn batched_and_unbatched_runs_apply_the_same_commands() {
        let run = |batch_max: u64| {
            let mut machines: Vec<SequencedKv> = group(3)
                .into_iter()
                .map(|m| SequencedKv::new(m, group(3)))
                .collect();
            // Member 1 submits 8 commands, batched or one at a time; each
            // frame is fully routed before the next is submitted.
            let mut seq = 0u64;
            while seq < 8 {
                let n = batch_max.min(8 - seq);
                let frame = if n == 1 {
                    SmrClientMsg::Request(SmrRequest {
                        seq,
                        command: put_command(MemberId(1), seq),
                    })
                } else {
                    SmrClientMsg::Batch {
                        first_seq: seq,
                        commands: (seq..seq + n)
                            .map(|s| put_command(MemberId(1), s))
                            .collect(),
                    }
                };
                let out = machines[1].handle(&MachineInput::from_app(frame.to_wire()));
                let queue = out.into_iter().map(|o| (MemberId(1), o)).collect();
                run_to_quiescence(&mut machines, queue);
                seq += n;
            }
            machines
                .iter()
                .map(|m| (m.delivered().to_vec(), m.state_digest()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4), "batching must not change what is applied");
    }

    /// Submits `seqs` commands from each member and routes to quiescence.
    fn run_load(machines: &mut [SequencedKv], seqs: std::ops::Range<u64>) {
        let n = machines.len() as u32;
        let mut queue = Vec::new();
        for seq in seqs {
            for m in 0..n {
                let out =
                    machines[m as usize].handle(&MachineInput::from_app(put(MemberId(m), seq)));
                queue.extend(out.into_iter().map(|o| (MemberId(m), o)));
            }
        }
        run_to_quiescence(machines, queue);
    }

    #[test]
    fn cold_replacement_catches_up_via_snapshot() {
        let mut machines: Vec<SequencedKv> = group(3)
            .into_iter()
            .map(|m| SequencedKv::new(m, group(3)))
            .collect();
        run_load(&mut machines, 0..4);
        assert_eq!(machines[2].delivered().len(), 12);

        // Member 2 is replaced by a fresh, empty replica: without state
        // transfer it would diverge forever.
        machines[2] = SequencedKv::new(MemberId(2), group(3));
        assert!(machines[2].delivered().is_empty());
        let out = machines[2].handle(&MachineInput::from_app(SmrClientMsg::Recover.to_wire()));
        assert!(machines[2].is_recovering());
        run_to_quiescence(
            &mut machines,
            out.into_iter().map(|o| (MemberId(2), o)).collect(),
        );

        assert!(!machines[2].is_recovering());
        assert_eq!(machines[2].delivered(), machines[0].delivered());
        assert_eq!(machines[2].state_digest(), machines[0].state_digest());
        // The rejoin was ordered as a view transition everybody installed.
        for m in &machines {
            assert_eq!(m.view().id, 1, "{:?}", m.member());
            assert_eq!(m.view(), machines[0].view());
        }

        // The group keeps working, and the rejoined member keeps up.
        run_load(&mut machines, 4..6);
        assert_eq!(machines[2].delivered(), machines[0].delivered());
        assert_eq!(machines[2].state_digest(), machines[0].state_digest());
    }

    #[test]
    fn replacement_sequencer_orders_only_after_catch_up() {
        let mut machines: Vec<SequencedKv> = group(3)
            .into_iter()
            .map(|m| SequencedKv::new(m, group(3)))
            .collect();
        run_load(&mut machines, 0..3);
        let old_len = machines[1].delivered().len();
        assert_eq!(old_len, 9);

        // The sequencer itself is replaced cold.  A fresh sequencer that
        // ordered immediately would restart the numbering at global 0 and
        // collide with the existing history.
        machines[0] = SequencedKv::new(MemberId(0), group(3));
        let recovery = machines[0].handle(&MachineInput::from_app(SmrClientMsg::Recover.to_wire()));

        // A submission arriving mid-recovery is parked, not ordered.
        let submit = SmrPeerMsg::Submit {
            origin: MemberId(1),
            seq: 100,
            command: put_command(MemberId(1), 100),
        };
        assert!(machines[0]
            .handle(&MachineInput::from_peer(MemberId(1), submit.to_wire()))
            .is_empty());

        run_to_quiescence(
            &mut machines,
            recovery.into_iter().map(|o| (MemberId(0), o)).collect(),
        );

        // After catch-up the parked work was ordered above the old history:
        // everyone has the 9 old commands, the rejoin view change, and the
        // parked submission — in the same order, with the same state.
        assert!(!machines[0].is_recovering());
        assert_eq!(machines[0].delivered().len(), old_len + 1);
        assert_eq!(machines[0].delivered().last(), Some(&(MemberId(1), 100)));
        for m in &machines[1..] {
            assert_eq!(m.delivered(), machines[0].delivered());
            assert_eq!(m.state_digest(), machines[0].state_digest());
            assert_eq!(m.view().id, 1);
        }
    }

    #[test]
    fn warm_recovery_without_missed_state_still_rejoins() {
        let mut machines: Vec<SequencedKv> = group(3)
            .into_iter()
            .map(|m| SequencedKv::new(m, group(3)))
            .collect();
        run_load(&mut machines, 0..2);
        // Member 1 recovers warm with its state intact; the catch-up replies
        // carry nothing new but still clear the recovery flag, and the
        // rejoin still bumps the view.
        let out = machines[1].handle(&MachineInput::from_app(SmrClientMsg::Recover.to_wire()));
        run_to_quiescence(
            &mut machines,
            out.into_iter().map(|o| (MemberId(1), o)).collect(),
        );
        assert!(!machines[1].is_recovering());
        for m in &machines {
            assert_eq!(m.view().id, 1);
            assert_eq!(m.delivered(), machines[0].delivered());
        }
    }

    #[test]
    fn singleton_group_recover_is_a_no_op() {
        let mut m = SequencedKv::new(MemberId(0), group(1));
        assert!(m
            .handle(&MachineInput::from_app(SmrClientMsg::Recover.to_wire()))
            .is_empty());
        assert!(!m.is_recovering());
    }

    #[test]
    fn recovery_wire_round_trips() {
        let recover = SmrClientMsg::Recover;
        assert_eq!(
            SmrClientMsg::from_wire(&recover.to_wire()).unwrap(),
            recover
        );
        assert_eq!(recover.encoded_len(), recover.to_wire().len());
        let view = GroupView {
            id: 3,
            members: vec![MemberId(0), MemberId(1), MemberId(2)],
        };
        assert_eq!(GroupView::from_wire(&view.to_wire()).unwrap(), view);
        assert_eq!(view.encoded_len(), view.to_wire().len());
        for msg in [
            SmrPeerMsg::CatchUpRequest {
                member: MemberId(2),
                view_id: 1,
                have_applied: 5,
            },
            SmrPeerMsg::Snapshot {
                view: view.clone(),
                next_global: 9,
                next_apply: 8,
                ordered_seq: vec![(MemberId(0), 1), (MemberId(1), 2)],
                store: KvStore::new().snapshot(),
                delivered: vec![(MemberId(0), 1)],
            },
            SmrPeerMsg::Rejoin {
                member: MemberId(1),
            },
            SmrPeerMsg::ViewChange {
                global: 12,
                view: view.clone(),
            },
        ] {
            assert_eq!(SmrPeerMsg::from_wire(&msg.to_wire()).unwrap(), msg);
            assert_eq!(msg.encoded_len(), msg.to_wire().len());
        }
        let upcall = SmrUpcall::View(SmrViewInstall { global: 12, view });
        assert_eq!(SmrUpcall::from_wire(&upcall.to_wire()).unwrap(), upcall);
        assert_eq!(upcall.encoded_len(), upcall.to_wire().len());
    }

    #[test]
    fn view_semantics() {
        let v = GroupView::initial(group(3));
        assert_eq!(v.id, 0);
        assert_eq!(v.sequencer(), MemberId(0));
        assert!(v.contains(MemberId(2)));
        assert!(!v.contains(MemberId(3)));
        // Rejoin of a current member bumps the id, keeps the members.
        let rejoined = v.joined(MemberId(2));
        assert_eq!(rejoined.id, 1);
        assert_eq!(rejoined.members, v.members);
        // A genuinely new member is appended (never displacing the sequencer).
        let grown = v.joined(MemberId(3));
        assert_eq!(grown.members.len(), 4);
        assert_eq!(grown.sequencer(), MemberId(0));
    }

    #[test]
    fn malformed_inputs_are_ignored() {
        let mut m = SequencedKv::new(MemberId(0), group(2));
        assert!(m.handle(&MachineInput::from_app(vec![0xff])).is_empty());
        assert!(m
            .handle(&MachineInput::from_env(b"suspect".to_vec()))
            .is_empty());
        assert!(m.processing_cost(&MachineInput::from_app(vec![])) > SimDuration::ZERO);
        assert_eq!(m.name(), "smr-kv-0");
        assert!(m.is_sequencer());
    }
}
