//! A second deterministic group service: a fixed-sequencer replicated
//! key-value store (**SMR-KV**).
//!
//! NewTOP's GC object is one instance of the machine shape the fail-signal
//! transformation lifts; this module provides a *different* one, so the suite
//! can demonstrate that the wrapper path is truly service-agnostic
//! (**FS-SMR** in the scenario harness).  The service totally orders client
//! commands through a fixed sequencer — the asymmetric scheme of the paper's
//! §2 discussion, stripped to its essence:
//!
//! * a member receiving a client command forwards it to the sequencer
//!   (member 0) as a [`SmrPeerMsg::Submit`];
//! * the sequencer assigns a global sequence number and multicasts the
//!   resulting [`SmrPeerMsg::Ordered`] record to every peer;
//! * every member applies `Ordered` records strictly in global order to its
//!   local [`KvStore`] replica and raises a [`SmrDeliver`] upcall to its
//!   local application.
//!
//! # Request batching
//!
//! Clients may submit a whole [`SmrClientMsg::Batch`] of commands at once.
//! A batch travels the ordering round as **one frame** end to end — one
//! [`SmrPeerMsg::SubmitBatch`] to the sequencer, one
//! [`SmrPeerMsg::OrderedBatch`] multicast, one [`SmrUpcall::Batch`] upcall —
//! so under the fail-signal wrapper one signature covers all N commands
//! (every machine output is exactly one signed candidate frame).  Each
//! batched command still gets its own global order index and its own
//! at-most-once guard, so batched and unbatched runs apply the identical
//! command sequence.
//!
//! [`SequencedKv`] implements [`DeterministicMachine`] and honours the R1
//! determinism contract: it consults no clocks or random sources, and its
//! outputs are a pure function of the input sequence.  Identical replicas fed
//! identical inputs therefore produce byte-identical outputs — exactly what
//! the fail-signal wrapper pair compares.

use std::collections::BTreeMap;

use fs_common::codec::{Decoder, Encoder, Wire};
use fs_common::error::CodecError;
use fs_common::id::MemberId;
use fs_common::time::SimDuration;
use fs_common::Bytes;

use crate::command::{AppStateMachine, KvStore};
use crate::machine::{DeterministicMachine, Endpoint, MachineInput, MachineOutput};

/// A client command as submitted by the local application: the client's own
/// sequence number plus the encoded [`crate::command::KvCommand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrRequest {
    /// The submitting member's per-member sequence number.
    pub seq: u64,
    /// The encoded application command.
    pub command: Bytes,
}

impl Wire for SmrRequest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.seq);
        enc.put_bytes(&self.command);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            seq: dec.get_u64()?,
            command: dec.get_bytes_shared()?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + self.command.len()
    }
}

/// The frame a local application sends to its service machine: either one
/// command or a client-side batch of consecutive commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmrClientMsg {
    /// A single command submission.
    Request(SmrRequest),
    /// A batch of commands with consecutive per-member sequence numbers
    /// starting at `first_seq` (command `i` has sequence `first_seq + i`).
    Batch {
        /// The sequence number of the first command in the batch.
        first_seq: u64,
        /// The encoded application commands, in sequence order.
        commands: Vec<Bytes>,
    },
}

impl Wire for SmrClientMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SmrClientMsg::Request(request) => {
                enc.put_u8(0);
                request.encode(enc);
            }
            SmrClientMsg::Batch {
                first_seq,
                commands,
            } => {
                enc.put_u8(1);
                enc.put_u64(*first_seq);
                commands.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(SmrClientMsg::Request(SmrRequest::decode(dec)?)),
            1 => Ok(SmrClientMsg::Batch {
                first_seq: dec.get_u64()?,
                commands: Vec::<Bytes>::decode(dec)?,
            }),
            t => Err(CodecError::UnknownTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            SmrClientMsg::Request(request) => 1 + request.encoded_len(),
            SmrClientMsg::Batch { commands, .. } => 1 + 8 + commands.encoded_len(),
        }
    }
}

/// The delivery upcall raised to the local application once a command has
/// been applied in global order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrDeliver {
    /// The global order index assigned by the sequencer.
    pub global: u64,
    /// The member that submitted the command.
    pub origin: MemberId,
    /// The origin's per-member sequence number.
    pub seq: u64,
    /// The encoded application response.
    pub response: Bytes,
}

impl Wire for SmrDeliver {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.global);
        enc.put_member(self.origin);
        enc.put_u64(self.seq);
        enc.put_bytes(&self.response);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            global: dec.get_u64()?,
            origin: dec.get_member()?,
            seq: dec.get_u64()?,
            response: dec.get_bytes_shared()?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + 8 + 4 + self.response.len()
    }
}

/// One applied command inside a [`SmrDeliverBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrDeliverEntry {
    /// The member that submitted the command.
    pub origin: MemberId,
    /// The origin's per-member sequence number.
    pub seq: u64,
    /// The encoded application response.
    pub response: Bytes,
}

impl Wire for SmrDeliverEntry {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_member(self.origin);
        enc.put_u64(self.seq);
        enc.put_bytes(&self.response);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            origin: dec.get_member()?,
            seq: dec.get_u64()?,
            response: dec.get_bytes_shared()?,
        })
    }
    fn encoded_len(&self) -> usize {
        4 + 8 + 4 + self.response.len()
    }
}

/// A batched delivery upcall: entry `i` was applied at global order index
/// `first_global + i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrDeliverBatch {
    /// The global order index of the first entry.
    pub first_global: u64,
    /// The applied commands, in global order.
    pub entries: Vec<SmrDeliverEntry>,
}

impl Wire for SmrDeliverBatch {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.first_global);
        self.entries.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            first_global: dec.get_u64()?,
            entries: Vec::<SmrDeliverEntry>::decode(dec)?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + self.entries.encoded_len()
    }
}

/// The frame a service machine sends up to its local application: one
/// delivery, or one frame covering a whole applied batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmrUpcall {
    /// A single applied command.
    Deliver(SmrDeliver),
    /// Several commands applied back to back by one machine step.
    Batch(SmrDeliverBatch),
}

impl Wire for SmrUpcall {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SmrUpcall::Deliver(deliver) => {
                enc.put_u8(0);
                deliver.encode(enc);
            }
            SmrUpcall::Batch(batch) => {
                enc.put_u8(1);
                batch.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(SmrUpcall::Deliver(SmrDeliver::decode(dec)?)),
            1 => Ok(SmrUpcall::Batch(SmrDeliverBatch::decode(dec)?)),
            t => Err(CodecError::UnknownTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            SmrUpcall::Deliver(deliver) => deliver.encoded_len(),
            SmrUpcall::Batch(batch) => batch.encoded_len(),
        }
    }
}

/// One ordered command inside a [`SmrPeerMsg::OrderedBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmrOrderedEntry {
    /// The origin's per-member sequence number.
    pub seq: u64,
    /// The encoded application command.
    pub command: Bytes,
}

impl Wire for SmrOrderedEntry {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.seq);
        enc.put_bytes(&self.command);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            seq: dec.get_u64()?,
            command: dec.get_bytes_shared()?,
        })
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + self.command.len()
    }
}

/// Messages exchanged between the service machines of different members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmrPeerMsg {
    /// A command forwarded from its origin to the sequencer.
    Submit {
        /// The submitting member.
        origin: MemberId,
        /// The origin's per-member sequence number.
        seq: u64,
        /// The encoded application command.
        command: Bytes,
    },
    /// An ordered record multicast by the sequencer.
    Ordered {
        /// The global order index.
        global: u64,
        /// The member that submitted the command.
        origin: MemberId,
        /// The origin's per-member sequence number.
        seq: u64,
        /// The encoded application command.
        command: Bytes,
    },
    /// A client batch forwarded from its origin to the sequencer in one
    /// frame (command `i` has sequence `first_seq + i`).
    SubmitBatch {
        /// The submitting member.
        origin: MemberId,
        /// The sequence number of the first command in the batch.
        first_seq: u64,
        /// The encoded application commands, in sequence order.
        commands: Vec<Bytes>,
    },
    /// A batch of ordered records multicast by the sequencer in one frame:
    /// entry `i` holds global order index `first_global + i`.
    OrderedBatch {
        /// The global order index of the first entry.
        first_global: u64,
        /// The member that submitted every command in the batch.
        origin: MemberId,
        /// The ordered commands with their per-member sequence numbers.
        entries: Vec<SmrOrderedEntry>,
    },
}

impl Wire for SmrPeerMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SmrPeerMsg::Submit {
                origin,
                seq,
                command,
            } => {
                enc.put_u8(0);
                enc.put_member(*origin);
                enc.put_u64(*seq);
                enc.put_bytes(command);
            }
            SmrPeerMsg::Ordered {
                global,
                origin,
                seq,
                command,
            } => {
                enc.put_u8(1);
                enc.put_u64(*global);
                enc.put_member(*origin);
                enc.put_u64(*seq);
                enc.put_bytes(command);
            }
            SmrPeerMsg::SubmitBatch {
                origin,
                first_seq,
                commands,
            } => {
                enc.put_u8(2);
                enc.put_member(*origin);
                enc.put_u64(*first_seq);
                commands.encode(enc);
            }
            SmrPeerMsg::OrderedBatch {
                first_global,
                origin,
                entries,
            } => {
                enc.put_u8(3);
                enc.put_u64(*first_global);
                enc.put_member(*origin);
                entries.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(SmrPeerMsg::Submit {
                origin: dec.get_member()?,
                seq: dec.get_u64()?,
                command: dec.get_bytes_shared()?,
            }),
            1 => Ok(SmrPeerMsg::Ordered {
                global: dec.get_u64()?,
                origin: dec.get_member()?,
                seq: dec.get_u64()?,
                command: dec.get_bytes_shared()?,
            }),
            2 => Ok(SmrPeerMsg::SubmitBatch {
                origin: dec.get_member()?,
                first_seq: dec.get_u64()?,
                commands: Vec::<Bytes>::decode(dec)?,
            }),
            3 => Ok(SmrPeerMsg::OrderedBatch {
                first_global: dec.get_u64()?,
                origin: dec.get_member()?,
                entries: Vec::<SmrOrderedEntry>::decode(dec)?,
            }),
            t => Err(CodecError::UnknownTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            SmrPeerMsg::Submit { command, .. } => 1 + 4 + 8 + 4 + command.len(),
            SmrPeerMsg::Ordered { command, .. } => 1 + 8 + 4 + 8 + 4 + command.len(),
            SmrPeerMsg::SubmitBatch { commands, .. } => 1 + 4 + 8 + commands.encoded_len(),
            SmrPeerMsg::OrderedBatch { entries, .. } => 1 + 8 + 4 + entries.encoded_len(),
        }
    }
}

/// The sequenced replicated key-value machine of one group member.
///
/// Satisfies the paper's requirement **R1**: a deterministic (Mealy) state
/// machine whose outputs depend only on the sequence of inputs, never on
/// clocks, randomness or scheduling — which is what makes it liftable to an
/// FS process by the generic fail-signal wrapper.
#[derive(Debug, Clone)]
pub struct SequencedKv {
    member: MemberId,
    group: Vec<MemberId>,
    sequencer: MemberId,
    /// Next global index the sequencer will assign.
    next_global: u64,
    /// Next global index this replica will apply.
    next_apply: u64,
    /// Ordered records received ahead of `next_apply`.
    pending: BTreeMap<u64, (MemberId, u64, Bytes)>,
    /// Every `(origin, seq)` ordered so far (sequencer-side at-most-once
    /// guard; a set rather than a high-water mark so that submissions
    /// arriving out of order are still each ordered exactly once).
    ordered_seq: std::collections::BTreeSet<(MemberId, u64)>,
    store: KvStore,
    delivered: Vec<(MemberId, u64)>,
}

impl SequencedKv {
    /// Creates the machine replica of `member` in `group`.  Member 0 of the
    /// group (its first entry) acts as the sequencer.
    pub fn new(member: MemberId, group: Vec<MemberId>) -> Self {
        let sequencer = *group.first().expect("a group needs at least one member");
        Self {
            member,
            group,
            sequencer,
            next_global: 0,
            next_apply: 0,
            pending: BTreeMap::new(),
            ordered_seq: std::collections::BTreeSet::new(),
            store: KvStore::new(),
            delivered: Vec::new(),
        }
    }

    /// The member this replica serves.
    pub fn member(&self) -> MemberId {
        self.member
    }

    /// The group membership this replica was configured with.
    pub fn group(&self) -> &[MemberId] {
        &self.group
    }

    /// True when this replica is the group's sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.member == self.sequencer
    }

    /// The `(origin, seq)` pairs applied so far, in global order.
    pub fn delivered(&self) -> &[(MemberId, u64)] {
        &self.delivered
    }

    /// A digest of the replicated store, for convergence checks.
    pub fn state_digest(&self) -> u64 {
        self.store.state_digest()
    }

    /// Sequencer-side ordering: assigns the next global index and returns the
    /// multicast record plus the local delivery.
    fn order(&mut self, origin: MemberId, seq: u64, command: Bytes) -> Vec<MachineOutput> {
        debug_assert!(self.is_sequencer());
        if !self.ordered_seq.insert((origin, seq)) {
            return Vec::new();
        }
        let global = self.next_global;
        self.next_global += 1;
        let record = SmrPeerMsg::Ordered {
            global,
            origin,
            seq,
            command: command.clone(),
        };
        let mut out = vec![MachineOutput::broadcast(record.to_wire())];
        self.pending.insert(global, (origin, seq, command));
        out.extend(self.apply_ready());
        out
    }

    /// Sequencer-side ordering of a client batch: every not-yet-ordered
    /// command gets the next consecutive global index, and the whole batch
    /// is multicast as a single [`SmrPeerMsg::OrderedBatch`] frame.
    fn order_batch(
        &mut self,
        origin: MemberId,
        first_seq: u64,
        commands: Vec<Bytes>,
    ) -> Vec<MachineOutput> {
        debug_assert!(self.is_sequencer());
        let mut fresh = Vec::new();
        for (i, command) in commands.into_iter().enumerate() {
            let seq = first_seq + i as u64;
            if self.ordered_seq.insert((origin, seq)) {
                fresh.push(SmrOrderedEntry { seq, command });
            }
        }
        if fresh.is_empty() {
            return Vec::new();
        }
        let first_global = self.next_global;
        self.next_global += fresh.len() as u64;
        for (i, entry) in fresh.iter().enumerate() {
            self.pending.insert(
                first_global + i as u64,
                (origin, entry.seq, entry.command.clone()),
            );
        }
        let record = SmrPeerMsg::OrderedBatch {
            first_global,
            origin,
            entries: fresh,
        };
        let mut out = vec![MachineOutput::broadcast(record.to_wire())];
        out.extend(self.apply_ready());
        out
    }

    /// Applies every pending record whose global index is next in line.
    /// Everything applied by one machine step goes up in **one** frame: a
    /// single [`SmrUpcall::Deliver`], or one [`SmrUpcall::Batch`] when a
    /// batch (or a closed gap) applies several commands back to back.
    fn apply_ready(&mut self) -> Vec<MachineOutput> {
        let first_global = self.next_apply;
        let mut entries = Vec::new();
        while let Some((origin, seq, command)) = self.pending.remove(&self.next_apply) {
            self.next_apply += 1;
            let response = self.store.apply(&command);
            self.delivered.push((origin, seq));
            entries.push(SmrDeliverEntry {
                origin,
                seq,
                response,
            });
        }
        match entries.len() {
            0 => Vec::new(),
            1 => {
                let entry = entries.pop().expect("one entry");
                vec![MachineOutput::to_app(
                    SmrUpcall::Deliver(SmrDeliver {
                        global: first_global,
                        origin: entry.origin,
                        seq: entry.seq,
                        response: entry.response,
                    })
                    .to_wire(),
                )]
            }
            _ => vec![MachineOutput::to_app(
                SmrUpcall::Batch(SmrDeliverBatch {
                    first_global,
                    entries,
                })
                .to_wire(),
            )],
        }
    }
}

impl DeterministicMachine for SequencedKv {
    fn handle(&mut self, input: &MachineInput) -> Vec<MachineOutput> {
        match input.source {
            Endpoint::LocalApp => {
                let Ok(msg) = SmrClientMsg::from_wire(&input.bytes) else {
                    return Vec::new();
                };
                match msg {
                    SmrClientMsg::Request(request) => {
                        if self.is_sequencer() {
                            self.order(self.member, request.seq, request.command)
                        } else {
                            let submit = SmrPeerMsg::Submit {
                                origin: self.member,
                                seq: request.seq,
                                command: request.command,
                            };
                            vec![MachineOutput::to_peer(self.sequencer, submit.to_wire())]
                        }
                    }
                    SmrClientMsg::Batch {
                        first_seq,
                        commands,
                    } => {
                        if self.is_sequencer() {
                            self.order_batch(self.member, first_seq, commands)
                        } else {
                            let submit = SmrPeerMsg::SubmitBatch {
                                origin: self.member,
                                first_seq,
                                commands,
                            };
                            vec![MachineOutput::to_peer(self.sequencer, submit.to_wire())]
                        }
                    }
                }
            }
            Endpoint::Peer(_) => match SmrPeerMsg::from_wire(&input.bytes) {
                Ok(SmrPeerMsg::Submit {
                    origin,
                    seq,
                    command,
                }) if self.is_sequencer() => self.order(origin, seq, command),
                Ok(SmrPeerMsg::SubmitBatch {
                    origin,
                    first_seq,
                    commands,
                }) if self.is_sequencer() => self.order_batch(origin, first_seq, commands),
                Ok(SmrPeerMsg::Ordered {
                    global,
                    origin,
                    seq,
                    command,
                }) if !self.is_sequencer() => {
                    if global >= self.next_apply {
                        self.pending.insert(global, (origin, seq, command));
                    }
                    self.apply_ready()
                }
                Ok(SmrPeerMsg::OrderedBatch {
                    first_global,
                    origin,
                    entries,
                }) if !self.is_sequencer() => {
                    for (i, entry) in entries.into_iter().enumerate() {
                        let global = first_global + i as u64;
                        if global >= self.next_apply {
                            self.pending
                                .insert(global, (origin, entry.seq, entry.command));
                        }
                    }
                    self.apply_ready()
                }
                _ => Vec::new(),
            },
            // Environment inputs (e.g. converted fail-signals) carry no
            // commands for this service; they are acknowledged silently.
            Endpoint::Broadcast | Endpoint::Environment => Vec::new(),
        }
    }

    fn processing_cost(&self, _input: &MachineInput) -> SimDuration {
        SimDuration::from_micros(150)
    }

    fn name(&self) -> String {
        format!("smr-kv-{}", self.member.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::KvCommand;
    use crate::machine::check_determinism;

    fn group(n: u32) -> Vec<MemberId> {
        (0..n).map(MemberId).collect()
    }

    fn put_command(member: MemberId, seq: u64) -> Bytes {
        KvCommand::Put {
            key: format!("m{}-{}", member.0, seq),
            value: vec![seq as u8],
        }
        .to_wire()
    }

    fn put(member: MemberId, seq: u64) -> Bytes {
        SmrClientMsg::Request(SmrRequest {
            seq,
            command: put_command(member, seq),
        })
        .to_wire()
    }

    /// Routes machine outputs through an in-order network until quiescence
    /// and returns the machines for inspection.
    fn run_to_quiescence(machines: &mut [SequencedKv], mut queue: Vec<(MemberId, MachineOutput)>) {
        while let Some((src, output)) = queue.pop() {
            match output.dest {
                Endpoint::Peer(dest) => {
                    let more = machines[dest.0 as usize]
                        .handle(&MachineInput::from_peer(src, output.bytes));
                    queue.extend(more.into_iter().map(|o| (dest, o)));
                }
                Endpoint::Broadcast => {
                    for dest in 0..machines.len() as u32 {
                        if MemberId(dest) == src {
                            continue;
                        }
                        let more = machines[dest as usize]
                            .handle(&MachineInput::from_peer(src, output.bytes.clone()));
                        queue.extend(more.into_iter().map(|o| (MemberId(dest), o)));
                    }
                }
                Endpoint::LocalApp | Endpoint::Environment => {}
            }
        }
    }

    #[test]
    fn commands_from_every_member_are_totally_ordered() {
        let mut machines: Vec<SequencedKv> = group(3)
            .into_iter()
            .map(|m| SequencedKv::new(m, group(3)))
            .collect();
        let mut queue = Vec::new();
        for seq in 0..4u64 {
            for m in 0..3u32 {
                let out =
                    machines[m as usize].handle(&MachineInput::from_app(put(MemberId(m), seq)));
                queue.extend(out.into_iter().map(|o| (MemberId(m), o)));
            }
        }
        run_to_quiescence(&mut machines, queue);
        assert_eq!(machines[0].delivered().len(), 12);
        for m in &machines[1..] {
            assert_eq!(m.delivered(), machines[0].delivered());
            assert_eq!(m.state_digest(), machines[0].state_digest());
        }
    }

    #[test]
    fn out_of_order_records_are_buffered() {
        let mut m = SequencedKv::new(MemberId(1), group(2));
        let late = SmrPeerMsg::Ordered {
            global: 1,
            origin: MemberId(0),
            seq: 1,
            command: KvCommand::Put {
                key: "b".into(),
                value: vec![2],
            }
            .to_wire(),
        };
        let early = SmrPeerMsg::Ordered {
            global: 0,
            origin: MemberId(0),
            seq: 0,
            command: KvCommand::Put {
                key: "a".into(),
                value: vec![1],
            }
            .to_wire(),
        };
        assert!(m
            .handle(&MachineInput::from_peer(MemberId(0), late.to_wire()))
            .is_empty());
        let out = m.handle(&MachineInput::from_peer(MemberId(0), early.to_wire()));
        assert_eq!(out.len(), 1, "closing the gap applies both in one frame");
        let upcall = SmrUpcall::from_wire(&out[0].bytes).unwrap();
        match upcall {
            SmrUpcall::Batch(batch) => {
                assert_eq!(batch.first_global, 0);
                assert_eq!(batch.entries.len(), 2);
                assert_eq!(batch.entries[0].seq, 0);
                assert_eq!(batch.entries[1].seq, 1);
            }
            other => panic!("expected a batched upcall, got {other:?}"),
        }
        assert_eq!(m.delivered(), &[(MemberId(0), 0), (MemberId(0), 1)]);
    }

    #[test]
    fn sequencer_filters_duplicate_submissions() {
        let mut seq = SequencedKv::new(MemberId(0), group(2));
        let submit = SmrPeerMsg::Submit {
            origin: MemberId(1),
            seq: 1,
            command: KvCommand::Put {
                key: "k".into(),
                value: vec![9],
            }
            .to_wire(),
        };
        let first = seq.handle(&MachineInput::from_peer(MemberId(1), submit.to_wire()));
        assert!(!first.is_empty());
        let dup = seq.handle(&MachineInput::from_peer(MemberId(1), submit.to_wire()));
        assert!(dup.is_empty(), "replayed submission must not re-order");
        assert_eq!(seq.delivered().len(), 1);
    }

    #[test]
    fn machine_is_deterministic() {
        let inputs: Vec<MachineInput> = (0..12u64)
            .map(|i| {
                if i % 3 == 0 {
                    MachineInput::from_app(put(MemberId(0), i))
                } else {
                    MachineInput::from_peer(
                        MemberId(1),
                        SmrPeerMsg::Submit {
                            origin: MemberId(1),
                            seq: i,
                            command: KvCommand::Put {
                                key: format!("k{i}"),
                                value: vec![i as u8],
                            }
                            .to_wire(),
                        }
                        .to_wire(),
                    )
                }
            })
            .collect();
        assert!(check_determinism(
            || SequencedKv::new(MemberId(0), group(2)),
            &inputs
        ));
    }

    #[test]
    fn wire_round_trips() {
        let req = SmrRequest {
            seq: 7,
            command: Bytes::from(&b"cmd"[..]),
        };
        assert_eq!(SmrRequest::from_wire(&req.to_wire()).unwrap(), req);
        assert_eq!(req.encoded_len(), req.to_wire().len());
        let del = SmrDeliver {
            global: 1,
            origin: MemberId(2),
            seq: 3,
            response: Bytes::from(&b"ok"[..]),
        };
        assert_eq!(SmrDeliver::from_wire(&del.to_wire()).unwrap(), del);
        assert_eq!(del.encoded_len(), del.to_wire().len());
        for msg in [
            SmrPeerMsg::Submit {
                origin: MemberId(1),
                seq: 4,
                command: Bytes::from(&b"c"[..]),
            },
            SmrPeerMsg::Ordered {
                global: 9,
                origin: MemberId(1),
                seq: 4,
                command: Bytes::from(&b"c"[..]),
            },
        ] {
            assert_eq!(SmrPeerMsg::from_wire(&msg.to_wire()).unwrap(), msg);
            assert_eq!(msg.encoded_len(), msg.to_wire().len());
        }
    }

    #[test]
    fn batched_wire_round_trips() {
        let client = SmrClientMsg::Request(SmrRequest {
            seq: 5,
            command: Bytes::from(&b"one"[..]),
        });
        assert_eq!(SmrClientMsg::from_wire(&client.to_wire()).unwrap(), client);
        assert_eq!(client.encoded_len(), client.to_wire().len());
        let batch = SmrClientMsg::Batch {
            first_seq: 10,
            commands: vec![Bytes::from(&b"a"[..]), Bytes::from(&b"bb"[..])],
        };
        assert_eq!(SmrClientMsg::from_wire(&batch.to_wire()).unwrap(), batch);
        assert_eq!(batch.encoded_len(), batch.to_wire().len());
        for msg in [
            SmrPeerMsg::SubmitBatch {
                origin: MemberId(2),
                first_seq: 3,
                commands: vec![Bytes::from(&b"x"[..]), Bytes::from(&b"yz"[..])],
            },
            SmrPeerMsg::OrderedBatch {
                first_global: 11,
                origin: MemberId(2),
                entries: vec![
                    SmrOrderedEntry {
                        seq: 3,
                        command: Bytes::from(&b"x"[..]),
                    },
                    SmrOrderedEntry {
                        seq: 4,
                        command: Bytes::from(&b"yz"[..]),
                    },
                ],
            },
        ] {
            assert_eq!(SmrPeerMsg::from_wire(&msg.to_wire()).unwrap(), msg);
            assert_eq!(msg.encoded_len(), msg.to_wire().len());
        }
        for upcall in [
            SmrUpcall::Deliver(SmrDeliver {
                global: 0,
                origin: MemberId(1),
                seq: 0,
                response: Bytes::from(&b"ok"[..]),
            }),
            SmrUpcall::Batch(SmrDeliverBatch {
                first_global: 4,
                entries: vec![
                    SmrDeliverEntry {
                        origin: MemberId(1),
                        seq: 6,
                        response: Bytes::from(&b"r1"[..]),
                    },
                    SmrDeliverEntry {
                        origin: MemberId(1),
                        seq: 7,
                        response: Bytes::from(&b"r2"[..]),
                    },
                ],
            }),
        ] {
            assert_eq!(SmrUpcall::from_wire(&upcall.to_wire()).unwrap(), upcall);
            assert_eq!(upcall.encoded_len(), upcall.to_wire().len());
        }
    }

    #[test]
    fn batch_orders_every_command_in_one_frame() {
        let mut machines: Vec<SequencedKv> = group(2)
            .into_iter()
            .map(|m| SequencedKv::new(m, group(2)))
            .collect();
        let batch = SmrClientMsg::Batch {
            first_seq: 0,
            commands: (0..4).map(|i| put_command(MemberId(0), i)).collect(),
        }
        .to_wire();
        let out = machines[0].handle(&MachineInput::from_app(batch));
        // One OrderedBatch broadcast + one batched local upcall.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].dest, Endpoint::Broadcast));
        assert!(matches!(
            SmrPeerMsg::from_wire(&out[0].bytes).unwrap(),
            SmrPeerMsg::OrderedBatch { first_global: 0, ref entries, .. } if entries.len() == 4
        ));
        assert!(matches!(out[1].dest, Endpoint::LocalApp));
        assert!(matches!(
            SmrUpcall::from_wire(&out[1].bytes).unwrap(),
            SmrUpcall::Batch(ref b) if b.entries.len() == 4
        ));
        run_to_quiescence(&mut machines, vec![(MemberId(0), out[0].clone())]);
        assert_eq!(machines[1].delivered(), machines[0].delivered());
        assert_eq!(machines[1].state_digest(), machines[0].state_digest());
    }

    #[test]
    fn batch_filters_already_ordered_commands() {
        let mut seq = SequencedKv::new(MemberId(0), group(2));
        let submit = SmrPeerMsg::Submit {
            origin: MemberId(1),
            seq: 1,
            command: put_command(MemberId(1), 1),
        };
        assert!(!seq
            .handle(&MachineInput::from_peer(MemberId(1), submit.to_wire()))
            .is_empty());
        // A batch overlapping the already ordered (origin 1, seq 1) only
        // orders the fresh commands.
        let batch = SmrPeerMsg::SubmitBatch {
            origin: MemberId(1),
            first_seq: 0,
            commands: (0..3).map(|i| put_command(MemberId(1), i)).collect(),
        };
        let out = seq.handle(&MachineInput::from_peer(MemberId(1), batch.to_wire()));
        assert!(matches!(
            SmrPeerMsg::from_wire(&out[0].bytes).unwrap(),
            SmrPeerMsg::OrderedBatch { ref entries, .. }
                if entries.iter().map(|e| e.seq).collect::<Vec<_>>() == vec![0, 2]
        ));
        assert_eq!(
            seq.delivered(),
            &[(MemberId(1), 1), (MemberId(1), 0), (MemberId(1), 2)]
        );
        // Replaying the whole batch is a no-op.
        assert!(seq
            .handle(&MachineInput::from_peer(MemberId(1), batch.to_wire()))
            .is_empty());
    }

    #[test]
    fn batched_and_unbatched_runs_apply_the_same_commands() {
        let run = |batch_max: u64| {
            let mut machines: Vec<SequencedKv> = group(3)
                .into_iter()
                .map(|m| SequencedKv::new(m, group(3)))
                .collect();
            // Member 1 submits 8 commands, batched or one at a time; each
            // frame is fully routed before the next is submitted.
            let mut seq = 0u64;
            while seq < 8 {
                let n = batch_max.min(8 - seq);
                let frame = if n == 1 {
                    SmrClientMsg::Request(SmrRequest {
                        seq,
                        command: put_command(MemberId(1), seq),
                    })
                } else {
                    SmrClientMsg::Batch {
                        first_seq: seq,
                        commands: (seq..seq + n)
                            .map(|s| put_command(MemberId(1), s))
                            .collect(),
                    }
                };
                let out = machines[1].handle(&MachineInput::from_app(frame.to_wire()));
                let queue = out.into_iter().map(|o| (MemberId(1), o)).collect();
                run_to_quiescence(&mut machines, queue);
                seq += n;
            }
            machines
                .iter()
                .map(|m| (m.delivered().to_vec(), m.state_digest()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4), "batching must not change what is applied");
    }

    #[test]
    fn malformed_inputs_are_ignored() {
        let mut m = SequencedKv::new(MemberId(0), group(2));
        assert!(m.handle(&MachineInput::from_app(vec![0xff])).is_empty());
        assert!(m
            .handle(&MachineInput::from_env(b"suspect".to_vec()))
            .is_empty());
        assert!(m.processing_cost(&MachineInput::from_app(vec![])) > SimDuration::ZERO);
        assert_eq!(m.name(), "smr-kv-0");
        assert!(m.is_sequencer());
    }
}
