//! # fs-newtop-bft
//!
//! **FS-NewTOP**: the Byzantine-tolerant group-communication system obtained
//! by wrapping NewTOP's deterministic GC objects with the fail-signal layer —
//! the proof-of-concept integration of the paper (§3.1).
//!
//! The crate contains the two pieces the integration needed beyond plain
//! reuse, plus the deployment builders used by the benchmarks:
//!
//! * [`interceptor::FsInterceptor`] — the CORBA-interceptor analogue: fans
//!   application requests out to both wrapper objects and strips/deduplicates
//!   the double-signed responses, keeping the wrapping transparent;
//! * fail-signal-driven suspicion — configured in
//!   [`deployment::build_fs_newtop`]: a received fail-signal is converted
//!   into a `Suspect` control input for the GC membership, so suspicions are
//!   never false and groups never split without an actual failure;
//! * [`deployment`] — builders for the crash-tolerant NewTOP baseline and the
//!   FS-NewTOP system under both node layouts of the paper (Figures 4 and 5).
//!
//! ## Example: build and run a 3-member FS-NewTOP group
//!
//! ```
//! use fs_common::time::{SimDuration, SimTime};
//! use fs_newtop::app::TrafficConfig;
//! use fs_newtop_bft::deployment::{build_fs_newtop, DeploymentParams};
//!
//! let traffic = TrafficConfig::paper_default()
//!     .with_messages(3)
//!     .with_interval(SimDuration::from_millis(30));
//! let params = DeploymentParams::paper(3).with_traffic(traffic);
//! let mut deployment = build_fs_newtop(&params);
//! deployment.run(SimTime::from_secs(120));
//!
//! // Every application delivered every message, in the same total order.
//! let reference = deployment.app(0).delivery_log().to_vec();
//! assert_eq!(reference.len(), 9);
//! assert_eq!(deployment.app(1).delivery_log(), reference.as_slice());
//! assert_eq!(deployment.app(2).delivery_log(), reference.as_slice());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod interceptor;

pub use deployment::{
    build_fs_newtop, build_newtop, Deployment, DeploymentParams, Layout, MemberHandles,
};
pub use interceptor::FsInterceptor;
