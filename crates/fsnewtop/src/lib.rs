//! # fs-newtop-bft
//!
//! **FS-NewTOP**: the Byzantine-tolerant group-communication system obtained
//! by wrapping NewTOP's deterministic GC objects with the fail-signal layer —
//! the proof-of-concept integration of the paper (§3.1).
//!
//! The wrapper path itself is fully generic ([`failsignal::group`] +
//! [`failsignal::service::FsService`]) and the deployments are assembled by
//! the scenario harness (`fs-harness`); this crate keeps the NewTOP-flavoured
//! facade:
//!
//! * [`deployment::DeploymentParams`] — the paper's experimental knobs in one
//!   struct, with [`deployment::DeploymentParams::scenario`] bridging to the
//!   harness's orthogonal axes;
//! * [`deployment::Deployment`] — the simulator-backed deployment handle the
//!   figure drivers inspect, plus the deprecated [`deployment::build_newtop`]
//!   / [`deployment::build_fs_newtop`] forwards;
//! * [`interceptor`] — a re-export of the (service-agnostic) interceptor
//!   from its historical home.
//!
//! ## Example: build and run a 3-member FS-NewTOP group
//!
//! ```
//! use fs_common::time::{SimDuration, SimTime};
//! use fs_harness::Protocol;
//! use fs_newtop::app::TrafficConfig;
//! use fs_newtop_bft::deployment::{Deployment, DeploymentParams};
//!
//! let traffic = TrafficConfig::paper_default()
//!     .with_messages(3)
//!     .with_interval(SimDuration::from_millis(30));
//! let params = DeploymentParams::paper(3).with_traffic(traffic);
//! let mut deployment = Deployment::from_running(params.scenario(Protocol::FailSignal).build());
//! deployment.run(SimTime::from_secs(120));
//!
//! // Every application delivered every message, in the same total order.
//! let reference = deployment.app(0).delivery_log().to_vec();
//! assert_eq!(reference.len(), 9);
//! assert_eq!(deployment.app(1).delivery_log(), reference.as_slice());
//! assert_eq!(deployment.app(2).delivery_log(), reference.as_slice());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod interceptor;

#[allow(deprecated)]
pub use deployment::{
    build_fs_newtop, build_newtop, Deployment, DeploymentParams, Layout, MemberHandles,
};
pub use interceptor::FsInterceptor;
