//! Deployment parameters and legacy builders: crash-tolerant NewTOP and
//! Byzantine-tolerant FS-NewTOP groups on the discrete-event simulator.
//!
//! Since the scenario harness landed, this module is a thin, stable facade
//! over [`fs_harness::Scenario`]: [`DeploymentParams`] captures the paper's
//! knobs in one struct and [`DeploymentParams::scenario`] translates them to
//! the orthogonal harness axes.  The historical entry points
//! [`build_newtop`] and [`build_fs_newtop`] remain as deprecated one-line
//! forwards.
//!
//! Two layouts from the paper are supported for FS-NewTOP:
//!
//! * [`Layout::Full`] — Figure 4: each member's leader wrapper shares a node
//!   with the application and interceptor, and the follower wrapper sits on a
//!   dedicated paired node (`4f + 2` nodes in total for `2f + 1` members);
//! * [`Layout::Collapsed`] — Figure 5 (the experimental set-up): one node per
//!   member, each hosting its own application, interceptor and leader wrapper
//!   plus the *follower* wrapper of the next member's pair, halving the node
//!   count without violating assumption A2 on a lightly loaded LAN.
//!
//! The crash-tolerant baseline places one application and one NSO per node,
//! exactly as the original NewTOP measurements did.
//!
//! ## Migration
//!
//! | old | new |
//! |---|---|
//! | `build_newtop(&params)` | `params.scenario(Protocol::Crash).build()` |
//! | `build_fs_newtop(&params)` | `params.scenario(Protocol::FailSignal).build()` |
//! | `params.suspector = s` | `params.with_suspector(s)` |
//! | `Deployment::run` / `Deployment::app` | [`fs_harness::Running::run_until`] / [`fs_harness::Running::app`] |

use fs_common::config::TimingAssumptions;
use fs_common::id::{MemberId, NodeId, ProcessId};
use fs_common::time::SimDuration;
use fs_crypto::cost::CryptoCostModel;
use fs_harness::{NewTopService, Protocol, Running, Scenario, Workload};
use fs_newtop::app::{AppProcess, TrafficConfig};
use fs_newtop::gc::GcCosts;
use fs_newtop::suspector::SuspectorConfig;
use fs_simnet::node::NodeConfig;
use fs_simnet::sched::SchedulerKind;
use fs_simnet::sim::Simulation;

pub use failsignal::group::PairLayout;

/// Physical placement of the FS-NewTOP components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// The paper's Figure 4: two nodes per member (4f + 2 in total).
    Full,
    /// The paper's Figure 5 experimental placement: one node per member, each
    /// hosting a leader wrapper of its own pair and the follower wrapper of
    /// another member's pair.
    Collapsed,
}

impl From<Layout> for PairLayout {
    fn from(layout: Layout) -> Self {
        match layout {
            Layout::Full => PairLayout::Full,
            Layout::Collapsed => PairLayout::Collapsed,
        }
    }
}

/// Everything a deployment builder needs to know.
#[derive(Debug, Clone)]
pub struct DeploymentParams {
    /// Number of group members (applications).
    pub members: u32,
    /// Per-node configuration (thread pool, dispatch costs).
    pub node: NodeConfig,
    /// GC protocol-processing cost model.
    pub gc_costs: GcCosts,
    /// Cryptography cost model (FS-NewTOP only).
    pub crypto_costs: CryptoCostModel,
    /// Timing assumptions of the fail-signal pairs (FS-NewTOP only).
    pub timing: TimingAssumptions,
    /// Failure-suspector settings (crash-tolerant NewTOP only).
    pub suspector: SuspectorConfig,
    /// The workload each application generates.
    pub traffic: TrafficConfig,
    /// Physical placement (FS-NewTOP only).
    pub layout: Layout,
    /// Random seed for the simulation.
    pub seed: u64,
    /// The scheduler backing the simulator's future event set.  Results are
    /// identical for every kind (the determinism suite pins this down); the
    /// legacy heap exists for differential testing.
    pub scheduler: SchedulerKind,
}

impl DeploymentParams {
    /// Parameters matching the paper's experimental set-up (§4): era-2003
    /// nodes with a 10-thread pool on a lightly loaded 100 Mb/s LAN, the
    /// message-intensive symmetric total-order workload, suspectors with
    /// large timeouts so that no false suspicion occurs, and the collapsed
    /// placement of Figure 5.
    pub fn paper(members: u32) -> Self {
        Self {
            members,
            node: NodeConfig::era_2003(),
            gc_costs: GcCosts::era_2003(),
            crypto_costs: CryptoCostModel::era_2003(),
            // Large, conservative bounds: the paper's experiments choose
            // timeouts large enough that they never fire in failure-free
            // runs (they only influence failure-detection latency), so the
            // benchmark deployments use very generous values that hold even
            // when the system is driven deep into saturation.  Fault-injection
            // tests override these with tight values.
            timing: TimingAssumptions {
                delta: SimDuration::from_secs(120),
                kappa: 4.0,
                sigma: 4.0,
            },
            suspector: SuspectorConfig::large_timeouts(),
            traffic: TrafficConfig::paper_default(),
            layout: Layout::Collapsed,
            seed: 2003,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Returns a copy with a different workload.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficConfig) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different layout.
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Returns a copy using a different simulator scheduler (the legacy heap
    /// is used by the differential determinism tests).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy with tight fail-signal timing (for fault-injection
    /// tests where fast detection matters more than load tolerance).
    #[must_use]
    pub fn with_timing(mut self, timing: TimingAssumptions) -> Self {
        self.timing = timing;
        self
    }

    /// Returns a copy with a different crash-mode suspector configuration.
    #[must_use]
    pub fn with_suspector(mut self, suspector: SuspectorConfig) -> Self {
        self.suspector = suspector;
        self
    }

    /// Returns a copy with a different GC protocol cost model.
    #[must_use]
    pub fn with_gc_costs(mut self, gc_costs: GcCosts) -> Self {
        self.gc_costs = gc_costs;
        self
    }

    /// Returns a copy with a different cryptography cost model.
    #[must_use]
    pub fn with_crypto_costs(mut self, crypto_costs: CryptoCostModel) -> Self {
        self.crypto_costs = crypto_costs;
        self
    }

    /// Returns a copy with a different per-node configuration.
    #[must_use]
    pub fn with_node(mut self, node: NodeConfig) -> Self {
        self.node = node;
        self
    }

    /// Translates these parameters into a NewTOP [`Scenario`] under the
    /// given protocol — the bridge from the legacy one-struct configuration
    /// to the harness's orthogonal axes.
    pub fn scenario(&self, protocol: Protocol) -> Scenario {
        let service = NewTopService::new()
            .service_kind(self.traffic.service)
            .gc_costs(self.gc_costs)
            .suspector(self.suspector);
        let workload = Workload {
            payload_size: self.traffic.payload_size,
            messages: self.traffic.messages,
            interval: self.traffic.interval,
            start_delay: self.traffic.start_delay,
            arrival: self.traffic.arrival,
            arrival_seed: self.traffic.arrival_seed,
            clients: self.traffic.clients,
            max_in_flight: self.traffic.max_in_flight,
            admission: self.traffic.admission,
            batch_max: self.traffic.batch_max,
            batch_linger: self.traffic.batch_linger,
            ..Workload::paper_default()
        };
        Scenario::new(service)
            .members(self.members)
            .protocol(protocol)
            .workload(workload)
            .layout(self.layout.into())
            .timing(self.timing)
            .crypto_costs(self.crypto_costs)
            .node_config(self.node)
            .seed(self.seed)
            .scheduler(self.scheduler)
    }
}

/// The process identities of one deployed member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberHandles {
    /// The member index.
    pub member: MemberId,
    /// The application process.
    pub app: ProcessId,
    /// The middleware entry point the application talks to (the NSO in
    /// NewTOP, the interceptor in FS-NewTOP).
    pub middleware: ProcessId,
    /// The leader wrapper process (FS-NewTOP only; equals `middleware` in
    /// the crash-tolerant deployment).
    pub leader: ProcessId,
    /// The follower wrapper process (FS-NewTOP only; equals `middleware` in
    /// the crash-tolerant deployment).
    pub follower: ProcessId,
    /// The node hosting the application.
    pub app_node: NodeId,
}

/// A built deployment: the simulation plus the handles needed to inspect it.
pub struct Deployment {
    /// The simulation, ready to run.
    pub sim: Simulation,
    /// Per-member process handles.
    pub members: Vec<MemberHandles>,
    /// Whether this is the FS (Byzantine-tolerant) variant.
    pub fail_signal: bool,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("members", &self.members.len())
            .field("fail_signal", &self.fail_signal)
            .finish()
    }
}

impl Deployment {
    /// Unwraps a simulator-backed scenario run into the legacy deployment
    /// shape, for callers that inspect the raw [`Simulation`].
    ///
    /// # Panics
    ///
    /// Panics when `running` was built on the threaded runtime (the legacy
    /// deployment type is simulator-only — drive threaded scenarios through
    /// [`fs_harness::Running`] directly).
    pub fn from_running(running: Running) -> Self {
        let fail_signal = running.protocol() == Protocol::FailSignal;
        let (sim, procs) = running
            .into_sim()
            .expect("Deployment::from_running requires a simulator-backed scenario");
        let members = procs
            .into_iter()
            .map(|p| MemberHandles {
                member: p.member,
                app: p.app,
                middleware: p.middleware,
                leader: p.leader,
                follower: p.follower,
                app_node: sim.node_of(p.app).expect("app process is placed"),
            })
            .collect();
        Self {
            sim,
            members,
            fail_signal,
        }
    }

    /// The application process of each member, in member order.
    pub fn apps(&self) -> Vec<ProcessId> {
        self.members.iter().map(|m| m.app).collect()
    }

    /// Runs the deployment until `horizon` and returns the reached time.
    pub fn run(&mut self, horizon: fs_common::time::SimTime) -> fs_common::time::SimTime {
        self.sim.run_until(horizon)
    }

    /// Convenience accessor: the application actor of member `i`.
    pub fn app(&self, i: u32) -> &AppProcess {
        let handle = &self.members[i as usize];
        self.sim
            .actor::<AppProcess>(handle.app)
            .expect("app actor exists")
    }
}

/// Builds the crash-tolerant NewTOP baseline: one node per member hosting the
/// application and its NSO.
#[deprecated(
    since = "0.1.0",
    note = "use `params.scenario(Protocol::Crash).build()` (fs-harness) instead"
)]
pub fn build_newtop(params: &DeploymentParams) -> Deployment {
    Deployment::from_running(params.scenario(Protocol::Crash).build())
}

/// Builds the Byzantine-tolerant FS-NewTOP deployment: every member's GC is
/// wrapped by a fail-signal pair, the interceptor keeps the wrapping
/// transparent, and fail-signals are converted into (never false) suspicions.
#[deprecated(
    since = "0.1.0",
    note = "use `params.scenario(Protocol::FailSignal).build()` (fs-harness) instead"
)]
pub fn build_fs_newtop(params: &DeploymentParams) -> Deployment {
    Deployment::from_running(params.scenario(Protocol::FailSignal).build())
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::interceptor::FsInterceptor;
    use fs_common::time::SimTime;
    use fs_newtop::message::ServiceKind;

    fn small_traffic(messages: u64) -> TrafficConfig {
        TrafficConfig::paper_default()
            .with_messages(messages)
            .with_interval(SimDuration::from_millis(30))
    }

    fn run_and_check_agreement(mut deployment: Deployment, members: u32, messages: u64) {
        deployment.run(SimTime::from_secs(600));
        let expected = (members as u64) * messages;
        let reference: Vec<(MemberId, u64)> = deployment.app(0).delivery_log().to_vec();
        assert_eq!(
            reference.len() as u64,
            expected,
            "member 0 delivered {} of {expected}",
            reference.len()
        );
        for i in 1..members {
            let log = deployment.app(i).delivery_log();
            assert_eq!(log, reference.as_slice(), "member {i} diverged");
        }
    }

    #[test]
    fn newtop_small_group_totally_orders() {
        let params = DeploymentParams::paper(3).with_traffic(small_traffic(5));
        run_and_check_agreement(build_newtop(&params), 3, 5);
    }

    #[test]
    fn fs_newtop_small_group_totally_orders() {
        let params = DeploymentParams::paper(3).with_traffic(small_traffic(5));
        run_and_check_agreement(build_fs_newtop(&params), 3, 5);
    }

    #[test]
    fn fs_newtop_full_layout_also_works() {
        let params = DeploymentParams::paper(3)
            .with_traffic(small_traffic(3))
            .with_layout(Layout::Full);
        run_and_check_agreement(build_fs_newtop(&params), 3, 3);
    }

    #[test]
    fn fs_newtop_pairs_do_not_fail_in_failure_free_runs() {
        let params = DeploymentParams::paper(4).with_traffic(small_traffic(4));
        let mut deployment = build_fs_newtop(&params);
        deployment.run(SimTime::from_secs(600));
        for handle in &deployment.members {
            let interceptor = deployment
                .sim
                .actor::<FsInterceptor>(handle.middleware)
                .expect("interceptor");
            assert!(
                !interceptor.local_fail_signalled(),
                "member {} signalled",
                handle.member
            );
            assert_eq!(interceptor.receiver_stats().rejected, 0);
        }
    }

    #[test]
    fn fs_newtop_uses_more_messages_than_newtop() {
        let traffic = small_traffic(3);
        // Disable the baseline's ping traffic so the comparison counts only
        // protocol messages caused by the workload itself.
        let params = DeploymentParams::paper(3)
            .with_traffic(traffic)
            .with_suspector(SuspectorConfig::disabled());
        let mut newtop = build_newtop(&params);
        newtop.run(SimTime::from_secs(600));

        let mut fs = build_fs_newtop(&params);
        fs.run(SimTime::from_secs(600));

        assert!(
            fs.sim.stats().messages_sent > newtop.sim.stats().messages_sent,
            "fail-signal wrapping must add message overhead (fs {} vs newtop {})",
            fs.sim.stats().messages_sent,
            newtop.sim.stats().messages_sent
        );
    }

    #[test]
    fn asymmetric_service_also_agrees_under_fs() {
        let traffic = small_traffic(4).with_service(ServiceKind::AsymmetricTotal);
        let params = DeploymentParams::paper(3).with_traffic(traffic);
        run_and_check_agreement(build_fs_newtop(&params), 3, 4);
    }

    #[test]
    fn node_counts_match_the_paper() {
        // Full layout: 2 nodes per member; collapsed: 1 node per member;
        // crash-tolerant baseline: 1 node per member.
        let params = DeploymentParams::paper(3).with_traffic(small_traffic(1));
        let full = build_fs_newtop(&params.clone().with_layout(Layout::Full));
        assert_eq!(full.members.len(), 3);
        let newtop = build_newtop(&params);
        assert_eq!(newtop.members.len(), 3);
        assert!(!newtop.fail_signal);
        assert!(full.fail_signal);
        assert_eq!(full.apps().len(), 3);
    }

    #[test]
    fn forwards_match_direct_scenario_builds() {
        // The deprecated forwards and a hand-built Scenario must produce the
        // same deployment, observable event for observable event.
        let params = DeploymentParams::paper(3).with_traffic(small_traffic(3));
        let mut via_forward = build_fs_newtop(&params);
        via_forward.sim.enable_trace();
        via_forward.run(SimTime::from_secs(600));

        let mut via_scenario =
            Deployment::from_running(params.scenario(Protocol::FailSignal).build());
        via_scenario.sim.enable_trace();
        via_scenario.run(SimTime::from_secs(600));

        assert_eq!(
            via_forward.app(0).delivery_log(),
            via_scenario.app(0).delivery_log()
        );
        assert_eq!(via_forward.sim.stats(), via_scenario.sim.stats());
    }
}
