//! Deployment builders: crash-tolerant NewTOP and Byzantine-tolerant
//! FS-NewTOP groups on the discrete-event simulator.
//!
//! Two layouts from the paper are supported for FS-NewTOP:
//!
//! * [`Layout::Full`] — Figure 4: each member's leader wrapper shares a node
//!   with the application and interceptor, and the follower wrapper sits on a
//!   dedicated paired node (`4f + 2` nodes in total for `2f + 1` members);
//! * [`Layout::Collapsed`] — Figure 5 (the experimental set-up): one node per
//!   member, each hosting its own application, interceptor and leader wrapper
//!   plus the *follower* wrapper of the next member's pair, halving the node
//!   count without violating assumption A2 on a lightly loaded LAN.
//!
//! The crash-tolerant baseline places one application and one NSO per node,
//! exactly as the original NewTOP measurements did.

use std::collections::BTreeMap;

use failsignal::provision::{FsPairBuilder, FsPairSpec};
use fs_common::codec::Wire;
use fs_common::config::TimingAssumptions;
use fs_common::id::{FsId, MemberId, NodeId, ProcessId};
use fs_common::rng::DetRng;
use fs_common::time::SimDuration;
use fs_crypto::cost::CryptoCostModel;
use fs_crypto::keys::{provision, SignerId};
use fs_newtop::app::{AppProcess, TrafficConfig};
use fs_newtop::gc::{GcConfig, GcCosts, GcMachine};
use fs_newtop::message::ControlInput;
use fs_newtop::nso::{AddressBook, NsoActor};
use fs_newtop::suspector::SuspectorConfig;
use fs_simnet::link::{LinkModel, Topology};
use fs_simnet::node::NodeConfig;
use fs_simnet::sched::SchedulerKind;
use fs_simnet::sim::Simulation;
use fs_smr::machine::Endpoint;

use crate::interceptor::FsInterceptor;

/// Physical placement of the FS-NewTOP components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// The paper's Figure 4: two nodes per member (4f + 2 in total).
    Full,
    /// The paper's Figure 5 experimental placement: one node per member, each
    /// hosting a leader wrapper of its own pair and the follower wrapper of
    /// another member's pair.
    Collapsed,
}

/// Everything a deployment builder needs to know.
#[derive(Debug, Clone)]
pub struct DeploymentParams {
    /// Number of group members (applications).
    pub members: u32,
    /// Per-node configuration (thread pool, dispatch costs).
    pub node: NodeConfig,
    /// GC protocol-processing cost model.
    pub gc_costs: GcCosts,
    /// Cryptography cost model (FS-NewTOP only).
    pub crypto_costs: CryptoCostModel,
    /// Timing assumptions of the fail-signal pairs (FS-NewTOP only).
    pub timing: TimingAssumptions,
    /// Failure-suspector settings (crash-tolerant NewTOP only).
    pub suspector: SuspectorConfig,
    /// The workload each application generates.
    pub traffic: TrafficConfig,
    /// Physical placement (FS-NewTOP only).
    pub layout: Layout,
    /// Random seed for the simulation.
    pub seed: u64,
    /// The scheduler backing the simulator's future event set.  Results are
    /// identical for every kind (the determinism suite pins this down); the
    /// legacy heap exists for differential testing.
    pub scheduler: SchedulerKind,
}

impl DeploymentParams {
    /// Parameters matching the paper's experimental set-up (§4): era-2003
    /// nodes with a 10-thread pool on a lightly loaded 100 Mb/s LAN, the
    /// message-intensive symmetric total-order workload, suspectors with
    /// large timeouts so that no false suspicion occurs, and the collapsed
    /// placement of Figure 5.
    pub fn paper(members: u32) -> Self {
        Self {
            members,
            node: NodeConfig::era_2003(),
            gc_costs: GcCosts::era_2003(),
            crypto_costs: CryptoCostModel::era_2003(),
            // Large, conservative bounds: the paper's experiments choose
            // timeouts large enough that they never fire in failure-free
            // runs (they only influence failure-detection latency), so the
            // benchmark deployments use very generous values that hold even
            // when the system is driven deep into saturation.  Fault-injection
            // tests override these with tight values.
            timing: TimingAssumptions {
                delta: SimDuration::from_secs(120),
                kappa: 4.0,
                sigma: 4.0,
            },
            suspector: SuspectorConfig::large_timeouts(),
            traffic: TrafficConfig::paper_default(),
            layout: Layout::Collapsed,
            seed: 2003,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Returns a copy with a different workload.
    pub fn with_traffic(mut self, traffic: TrafficConfig) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different layout.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Returns a copy using a different simulator scheduler (the legacy heap
    /// is used by the differential determinism tests).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy with tight fail-signal timing (for fault-injection
    /// tests where fast detection matters more than load tolerance).
    pub fn with_timing(mut self, timing: TimingAssumptions) -> Self {
        self.timing = timing;
        self
    }
}

/// The process identities of one deployed member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberHandles {
    /// The member index.
    pub member: MemberId,
    /// The application process.
    pub app: ProcessId,
    /// The middleware entry point the application talks to (the NSO in
    /// NewTOP, the interceptor in FS-NewTOP).
    pub middleware: ProcessId,
    /// The leader wrapper process (FS-NewTOP only; equals `middleware` in
    /// the crash-tolerant deployment).
    pub leader: ProcessId,
    /// The follower wrapper process (FS-NewTOP only; equals `middleware` in
    /// the crash-tolerant deployment).
    pub follower: ProcessId,
    /// The node hosting the application.
    pub app_node: NodeId,
}

/// A built deployment: the simulation plus the handles needed to inspect it.
pub struct Deployment {
    /// The simulation, ready to run.
    pub sim: Simulation,
    /// Per-member process handles.
    pub members: Vec<MemberHandles>,
    /// Whether this is the FS (Byzantine-tolerant) variant.
    pub fail_signal: bool,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("members", &self.members.len())
            .field("fail_signal", &self.fail_signal)
            .finish()
    }
}

impl Deployment {
    /// The application process of each member, in member order.
    pub fn apps(&self) -> Vec<ProcessId> {
        self.members.iter().map(|m| m.app).collect()
    }

    /// Runs the deployment until `horizon` and returns the reached time.
    pub fn run(&mut self, horizon: fs_common::time::SimTime) -> fs_common::time::SimTime {
        self.sim.run_until(horizon)
    }

    /// Convenience accessor: the application actor of member `i`.
    pub fn app(&self, i: u32) -> &AppProcess {
        let handle = &self.members[i as usize];
        self.sim
            .actor::<AppProcess>(handle.app)
            .expect("app actor exists")
    }
}

fn lan_topology() -> Topology {
    Topology::new(LinkModel::lan_100mbps())
}

/// Builds the crash-tolerant NewTOP baseline: one node per member hosting the
/// application and its NSO.
pub fn build_newtop(params: &DeploymentParams) -> Deployment {
    let n = params.members;
    assert!(n >= 1, "a group needs at least one member");
    let group: Vec<MemberId> = (0..n).map(MemberId).collect();
    let mut sim = Simulation::with_scheduler(params.seed, lan_topology(), params.scheduler);

    // Identifier scheme: member i gets app = 2i, NSO = 2i + 1.
    let app_pid = |i: u32| ProcessId(2 * i);
    let nso_pid = |i: u32| ProcessId(2 * i + 1);

    let mut members = Vec::new();
    for i in 0..n {
        let node = sim.add_node(params.node);
        let peers: BTreeMap<MemberId, ProcessId> = (0..n)
            .filter(|j| *j != i)
            .map(|j| (MemberId(j), nso_pid(j)))
            .collect();
        let addresses = AddressBook::new(app_pid(i), peers);
        let gc = GcConfig::new(MemberId(i), group.clone()).with_costs(params.gc_costs);
        sim.spawn_with(
            nso_pid(i),
            node,
            Box::new(NsoActor::new(gc, addresses, params.suspector)),
        );
        sim.spawn_with(
            app_pid(i),
            node,
            Box::new(AppProcess::new(MemberId(i), nso_pid(i), params.traffic)),
        );
        members.push(MemberHandles {
            member: MemberId(i),
            app: app_pid(i),
            middleware: nso_pid(i),
            leader: nso_pid(i),
            follower: nso_pid(i),
            app_node: node,
        });
    }
    Deployment {
        sim,
        members,
        fail_signal: false,
    }
}

/// Builds the Byzantine-tolerant FS-NewTOP deployment: every member's GC is
/// wrapped by a fail-signal pair, the interceptor keeps the wrapping
/// transparent, and fail-signals are converted into (never false) suspicions.
pub fn build_fs_newtop(params: &DeploymentParams) -> Deployment {
    let n = params.members;
    assert!(n >= 1, "a group needs at least one member");
    let group: Vec<MemberId> = (0..n).map(MemberId).collect();
    let mut sim = Simulation::with_scheduler(params.seed, lan_topology(), params.scheduler);

    // Identifier scheme: member i gets app = 4i, interceptor = 4i + 1,
    // leader wrapper = 4i + 2, follower wrapper = 4i + 3.
    let app_pid = |i: u32| ProcessId(4 * i);
    let icp_pid = |i: u32| ProcessId(4 * i + 1);
    let leader_pid = |i: u32| ProcessId(4 * i + 2);
    let follower_pid = |i: u32| ProcessId(4 * i + 3);

    // Provision signing keys for every wrapper process (start-up step, A1/A5).
    let mut key_rng = DetRng::new(params.seed ^ 0x5157_3a11);
    let wrapper_processes: Vec<ProcessId> = (0..n)
        .flat_map(|i| [leader_pid(i), follower_pid(i)])
        .collect();
    let (mut keys, directory) = provision(wrapper_processes, &mut key_rng);

    // Nodes.
    let primary_nodes: Vec<NodeId> = (0..n).map(|_| sim.add_node(params.node)).collect();
    let follower_nodes: Vec<NodeId> = match params.layout {
        Layout::Full => (0..n).map(|_| sim.add_node(params.node)).collect(),
        Layout::Collapsed => {
            // Follower of member i lives on the primary node of member (i+1) % n.
            (0..n)
                .map(|i| primary_nodes[((i + 1) % n) as usize])
                .collect()
        }
    };

    let mut members = Vec::new();
    for i in 0..n {
        let fs = FsId(i);
        let spec = FsPairSpec::new(fs, leader_pid(i), follower_pid(i));

        let mut builder = FsPairBuilder::new(spec)
            .timing(params.timing)
            .crypto_costs(params.crypto_costs)
            .trust_client(icp_pid(i), Endpoint::LocalApp)
            .route(Endpoint::LocalApp, vec![icp_pid(i)]);

        // Peers: every other member's pair is both a source and a destination.
        let mut broadcast_targets = Vec::new();
        for j in 0..n {
            if j == i {
                continue;
            }
            let peer_fs = FsId(j);
            let peer_signers = (SignerId(leader_pid(j)), SignerId(follower_pid(j)));
            builder = builder
                .accept_fs_source(
                    (leader_pid(j), follower_pid(j)),
                    peer_fs,
                    peer_signers,
                    Endpoint::Peer(MemberId(j)),
                )
                .on_fail_signal(peer_fs, ControlInput::Suspect(MemberId(j)).to_wire())
                .route(
                    Endpoint::Peer(MemberId(j)),
                    vec![leader_pid(j), follower_pid(j)],
                );
            broadcast_targets.push(leader_pid(j));
            broadcast_targets.push(follower_pid(j));
        }
        builder = builder.route(Endpoint::Broadcast, broadcast_targets);

        let gc_config = GcConfig::new(MemberId(i), group.clone()).with_costs(params.gc_costs);
        let leader_key = keys.remove(&SignerId(leader_pid(i))).expect("leader key");
        let follower_key = keys
            .remove(&SignerId(follower_pid(i)))
            .expect("follower key");
        let (leader_actor, follower_actor) = builder.build(
            leader_key,
            follower_key,
            std::sync::Arc::clone(&directory),
            (
                Box::new(GcMachine::new(gc_config.clone())),
                Box::new(GcMachine::new(gc_config)),
            ),
        );

        sim.spawn_with(
            leader_pid(i),
            primary_nodes[i as usize],
            Box::new(leader_actor),
        );
        sim.spawn_with(
            follower_pid(i),
            follower_nodes[i as usize],
            Box::new(follower_actor),
        );

        let interceptor = FsInterceptor::new(
            app_pid(i),
            fs,
            leader_pid(i),
            follower_pid(i),
            std::sync::Arc::clone(&directory),
        );
        sim.spawn_with(icp_pid(i), primary_nodes[i as usize], Box::new(interceptor));
        sim.spawn_with(
            app_pid(i),
            primary_nodes[i as usize],
            Box::new(AppProcess::new(MemberId(i), icp_pid(i), params.traffic)),
        );

        members.push(MemberHandles {
            member: MemberId(i),
            app: app_pid(i),
            middleware: icp_pid(i),
            leader: leader_pid(i),
            follower: follower_pid(i),
            app_node: primary_nodes[i as usize],
        });
    }

    Deployment {
        sim,
        members,
        fail_signal: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_common::time::SimTime;
    use fs_newtop::message::ServiceKind;

    fn small_traffic(messages: u64) -> TrafficConfig {
        TrafficConfig::paper_default()
            .with_messages(messages)
            .with_interval(SimDuration::from_millis(30))
    }

    fn run_and_check_agreement(mut deployment: Deployment, members: u32, messages: u64) {
        deployment.run(SimTime::from_secs(600));
        let expected = (members as u64) * messages;
        let reference: Vec<(MemberId, u64)> = deployment.app(0).delivery_log().to_vec();
        assert_eq!(
            reference.len() as u64,
            expected,
            "member 0 delivered {} of {expected}",
            reference.len()
        );
        for i in 1..members {
            let log = deployment.app(i).delivery_log();
            assert_eq!(log, reference.as_slice(), "member {i} diverged");
        }
    }

    #[test]
    fn newtop_small_group_totally_orders() {
        let params = DeploymentParams::paper(3).with_traffic(small_traffic(5));
        run_and_check_agreement(build_newtop(&params), 3, 5);
    }

    #[test]
    fn fs_newtop_small_group_totally_orders() {
        let params = DeploymentParams::paper(3).with_traffic(small_traffic(5));
        run_and_check_agreement(build_fs_newtop(&params), 3, 5);
    }

    #[test]
    fn fs_newtop_full_layout_also_works() {
        let params = DeploymentParams::paper(3)
            .with_traffic(small_traffic(3))
            .with_layout(Layout::Full);
        run_and_check_agreement(build_fs_newtop(&params), 3, 3);
    }

    #[test]
    fn fs_newtop_pairs_do_not_fail_in_failure_free_runs() {
        let params = DeploymentParams::paper(4).with_traffic(small_traffic(4));
        let mut deployment = build_fs_newtop(&params);
        deployment.run(SimTime::from_secs(600));
        for handle in &deployment.members {
            let interceptor = deployment
                .sim
                .actor::<FsInterceptor>(handle.middleware)
                .expect("interceptor");
            assert!(
                !interceptor.local_fail_signalled(),
                "member {} signalled",
                handle.member
            );
            assert_eq!(interceptor.receiver_stats().rejected, 0);
        }
    }

    #[test]
    fn fs_newtop_uses_more_messages_than_newtop() {
        let traffic = small_traffic(3);
        // Disable the baseline's ping traffic so the comparison counts only
        // protocol messages caused by the workload itself.
        let mut newtop_params = DeploymentParams::paper(3).with_traffic(traffic);
        newtop_params.suspector = SuspectorConfig::disabled();
        let mut newtop = build_newtop(&newtop_params);
        newtop.run(SimTime::from_secs(600));

        let fs_params = DeploymentParams::paper(3).with_traffic(traffic);
        let mut fs = build_fs_newtop(&fs_params);
        fs.run(SimTime::from_secs(600));

        assert!(
            fs.sim.stats().messages_sent > newtop.sim.stats().messages_sent,
            "fail-signal wrapping must add message overhead (fs {} vs newtop {})",
            fs.sim.stats().messages_sent,
            newtop.sim.stats().messages_sent
        );
    }

    #[test]
    fn asymmetric_service_also_agrees_under_fs() {
        let traffic = small_traffic(4).with_service(ServiceKind::AsymmetricTotal);
        let params = DeploymentParams::paper(3).with_traffic(traffic);
        run_and_check_agreement(build_fs_newtop(&params), 3, 4);
    }

    #[test]
    fn node_counts_match_the_paper() {
        // Full layout: 2 nodes per member; collapsed: 1 node per member;
        // crash-tolerant baseline: 1 node per member.
        let params = DeploymentParams::paper(3).with_traffic(small_traffic(1));
        let full = build_fs_newtop(&params.clone().with_layout(Layout::Full));
        assert_eq!(full.members.len(), 3);
        let newtop = build_newtop(&params);
        assert_eq!(newtop.members.len(), 3);
        assert!(!newtop.fail_signal);
        assert!(full.fail_signal);
        assert_eq!(full.apps().len(), 3);
    }
}
