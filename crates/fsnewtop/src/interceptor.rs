//! The client-side interceptor of FS-NewTOP.
//!
//! The interceptor never contained NewTOP-specific code, so it now lives in
//! the generic fail-signal crate ([`failsignal::interceptor`]) where the
//! runtime-agnostic group builder can reuse it for every wrapped service;
//! this module re-exports it under its historical path.

pub use failsignal::interceptor::FsInterceptor;
