//! Fault injection at the actor boundary.
//!
//! Faults are injected by wrapping a victim actor in a [`FaultyActor`] whose
//! context intercepts the victim's outgoing messages and applies the
//! configured [`FaultPlan`]: corruption, drops, duplication, silent crash, or
//! spontaneous garbage emission.  This mirrors the methodology of the
//! fault-injection study the paper builds on (\[SSKXBI01\]): faults manifest at
//! a single node and the surrounding fail-signal machinery must detect or
//! mask them.

use fs_common::id::ProcessId;
use fs_common::rng::DetRng;
use fs_common::time::{SimDuration, SimTime};
use fs_common::Bytes;
use fs_simnet::actor::{Actor, Context, TimerId};

/// What kind of misbehaviour to inject.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Flip bytes in outgoing payloads (authenticated-Byzantine value fault).
    CorruptOutputs {
        /// Probability that any given outgoing message is corrupted.
        probability: f64,
    },
    /// Silently drop outgoing messages (omission fault).
    DropOutputs {
        /// Probability that any given outgoing message is dropped.
        probability: f64,
    },
    /// Send every outgoing message twice (duplication fault).
    DuplicateOutputs,
    /// Stop producing any output and ignore all input (silent crash).
    Crash,
    /// Emit a fixed garbage message to a chosen destination on every input
    /// (babbling fault; with the fail-signal bytes this models fs2 —
    /// arbitrary fail-signal emission).
    Babble {
        /// The destination to spam.
        target: ProcessId,
        /// The payload to send.
        payload: Bytes,
    },
}

/// A fault plan: which fault to inject and when it becomes active.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: FaultKind,
    /// The number of handled events after which the fault becomes active
    /// (0 = faulty from the start).
    pub activate_after: u64,
}

impl FaultPlan {
    /// A plan active from the very first event.
    pub fn immediate(kind: FaultKind) -> Self {
        Self {
            kind,
            activate_after: 0,
        }
    }

    /// A plan that becomes active after `events` handled events.
    pub fn after(events: u64, kind: FaultKind) -> Self {
        Self {
            kind,
            activate_after: events,
        }
    }
}

/// Counters describing what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Events handled by the victim while the fault was inactive.
    pub clean_events: u64,
    /// Events handled (or swallowed) while the fault was active.
    pub faulty_events: u64,
    /// Outgoing messages corrupted.
    pub corrupted: u64,
    /// Outgoing messages dropped.
    pub dropped: u64,
    /// Outgoing messages duplicated.
    pub duplicated: u64,
    /// Garbage messages emitted.
    pub babbled: u64,
    /// Times the fault plan was disarmed by [`FaultyActor::revive`] (at most
    /// one until the plan is re-armed; revivals via the lifecycle plane's
    /// `on_recover` are counted here too).
    pub revived: u64,
}

/// Wraps a victim actor and applies a [`FaultPlan`] to its behaviour.
pub struct FaultyActor {
    inner: Box<dyn Actor>,
    plan: FaultPlan,
    handled: u64,
    /// True after [`FaultyActor::revive`]: the plan is disarmed and the
    /// victim behaves cleanly again until [`FaultyActor::rearm`].
    revived: bool,
    rng: DetRng,
    stats: InjectionStats,
}

impl std::fmt::Debug for FaultyActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyActor")
            .field("plan", &self.plan)
            .field("stats", &self.stats)
            .finish()
    }
}

impl FaultyActor {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Box<dyn Actor>, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            handled: 0,
            revived: false,
            rng: DetRng::new(seed),
            stats: InjectionStats::default(),
        }
    }

    /// The injection counters.
    pub fn stats(&self) -> InjectionStats {
        self.stats
    }

    /// Disarms the fault plan: from the next event on the victim behaves
    /// cleanly again, resuming from whatever state it retained.  This is
    /// what makes an injected [`FaultKind::Crash`] resumable rather than a
    /// permanent dead-end — a crashed victim that is revived starts
    /// processing (and answering) again, and the surrounding protocol's
    /// recovery machinery has something real to catch up.  Idempotent until
    /// [`FaultyActor::rearm`]; counted in [`InjectionStats::revived`].
    /// Called automatically when the lifecycle plane warm-restarts the
    /// victim (see [`Actor::on_recover`]).
    pub fn revive(&mut self) {
        if !self.revived {
            self.revived = true;
            self.stats.revived += 1;
        }
    }

    /// Re-arms a previously revived plan (the activation threshold still
    /// applies, counted from the start of the run).
    pub fn rearm(&mut self) {
        self.revived = false;
    }

    fn active(&self) -> bool {
        !self.revived && self.handled >= self.plan.activate_after
    }
}

struct FaultyContext<'a> {
    inner: &'a mut dyn Context,
    kind: &'a FaultKind,
    active: bool,
    rng: &'a mut DetRng,
    stats: &'a mut InjectionStats,
}

impl Context for FaultyContext<'_> {
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn me(&self) -> ProcessId {
        self.inner.me()
    }
    fn send(&mut self, to: ProcessId, payload: Bytes) {
        if !self.active {
            self.inner.send(to, payload);
            return;
        }
        match self.kind {
            FaultKind::CorruptOutputs { probability } => {
                if self.rng.chance(*probability) && !payload.is_empty() {
                    // The frame is an immutable shared buffer; a corrupting
                    // fault is the one place that must copy it to mutate it.
                    let mut corrupted = payload.to_vec();
                    let idx = self.rng.below(corrupted.len() as u64) as usize;
                    corrupted[idx] ^= 0xff;
                    self.stats.corrupted += 1;
                    self.inner.send(to, corrupted.into());
                } else {
                    self.inner.send(to, payload);
                }
            }
            FaultKind::DropOutputs { probability } => {
                if self.rng.chance(*probability) {
                    self.stats.dropped += 1;
                } else {
                    self.inner.send(to, payload);
                }
            }
            FaultKind::DuplicateOutputs => {
                // Duplication is free: both copies share the same buffer.
                self.inner.send(to, payload.clone());
                self.inner.send(to, payload);
                self.stats.duplicated += 1;
            }
            FaultKind::Crash => {
                // A crashed process sends nothing.
                self.stats.dropped += 1;
            }
            FaultKind::Babble { .. } => {
                self.inner.send(to, payload);
            }
        }
    }
    fn set_timer(&mut self, delay: SimDuration, timer: TimerId) {
        self.inner.set_timer(delay, timer);
    }
    fn cancel_timer(&mut self, timer: TimerId) {
        self.inner.cancel_timer(timer);
    }
    fn charge_cpu(&mut self, amount: SimDuration) {
        self.inner.charge_cpu(amount);
    }
    fn rng(&mut self) -> &mut DetRng {
        self.inner.rng()
    }
    fn trace(&mut self, label: &str) {
        self.inner.trace(label);
    }
}

impl Actor for FaultyActor {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
        let active = self.active();
        self.handled += 1;
        if active {
            self.stats.faulty_events += 1;
        } else {
            self.stats.clean_events += 1;
        }
        if active && self.plan.kind == FaultKind::Crash {
            // A crashed victim neither processes nor answers.
            return;
        }
        if active {
            if let FaultKind::Babble {
                target,
                payload: garbage,
            } = &self.plan.kind
            {
                ctx.send(*target, garbage.clone());
                self.stats.babbled += 1;
            }
        }
        let mut faulty = FaultyContext {
            inner: ctx,
            kind: &self.plan.kind,
            active,
            rng: &mut self.rng,
            stats: &mut self.stats,
        };
        self.inner.on_message(&mut faulty, from, payload);
    }

    fn on_recover(&mut self, ctx: &mut dyn Context) {
        // A warm restart revives a crash-injected victim: the injected
        // plan is disarmed and the inner actor resynchronises.
        self.revive();
        self.inner.on_recover(ctx);
    }

    fn on_timer(&mut self, ctx: &mut dyn Context, timer: TimerId) {
        let active = self.active();
        if active && self.plan.kind == FaultKind::Crash {
            return;
        }
        let mut faulty = FaultyContext {
            inner: ctx,
            kind: &self.plan.kind,
            active,
            rng: &mut self.rng,
            stats: &mut self.stats,
        };
        self.inner.on_timer(&mut faulty, timer);
    }

    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_simnet::actor::TestContext;

    /// Echoes every message back to its sender.
    struct Echo;
    impl Actor for Echo {
        fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
            ctx.send(from, payload);
        }
    }

    fn drive(plan: FaultPlan, messages: u32) -> (FaultyActor, TestContext) {
        let mut actor = FaultyActor::new(Box::new(Echo), plan, 7);
        let mut ctx = TestContext::new(ProcessId(0));
        for i in 0..messages {
            actor.on_message(&mut ctx, ProcessId(1), vec![i as u8; 4].into());
        }
        (actor, ctx)
    }

    #[test]
    fn inactive_fault_is_transparent() {
        let (actor, ctx) = drive(FaultPlan::after(100, FaultKind::Crash), 5);
        assert_eq!(ctx.sent.len(), 5);
        assert_eq!(actor.stats().clean_events, 5);
        assert_eq!(actor.stats().faulty_events, 0);
    }

    #[test]
    fn crash_stops_all_output() {
        let (actor, ctx) = drive(FaultPlan::after(2, FaultKind::Crash), 6);
        assert_eq!(ctx.sent.len(), 2);
        assert_eq!(actor.stats().clean_events, 2);
        assert_eq!(actor.stats().faulty_events, 4);
    }

    #[test]
    fn corruption_changes_payloads() {
        let (actor, ctx) = drive(
            FaultPlan::immediate(FaultKind::CorruptOutputs { probability: 1.0 }),
            4,
        );
        assert_eq!(ctx.sent.len(), 4);
        assert_eq!(actor.stats().corrupted, 4);
        for (i, out) in ctx.sent.iter().enumerate() {
            assert_ne!(
                out.payload,
                vec![i as u8; 4],
                "payload {i} should be corrupted"
            );
        }
    }

    #[test]
    fn drops_remove_messages() {
        let (actor, ctx) = drive(
            FaultPlan::immediate(FaultKind::DropOutputs { probability: 1.0 }),
            4,
        );
        assert!(ctx.sent.is_empty());
        assert_eq!(actor.stats().dropped, 4);
    }

    #[test]
    fn duplication_doubles_messages() {
        let (actor, ctx) = drive(FaultPlan::immediate(FaultKind::DuplicateOutputs), 3);
        assert_eq!(ctx.sent.len(), 6);
        assert_eq!(actor.stats().duplicated, 3);
    }

    #[test]
    fn babbling_spams_the_target() {
        let plan = FaultPlan::immediate(FaultKind::Babble {
            target: ProcessId(9),
            payload: b"garbage"[..].into(),
        });
        let (actor, ctx) = drive(plan, 3);
        assert_eq!(ctx.sent_to(ProcessId(9)).len(), 3);
        assert_eq!(actor.stats().babbled, 3);
        assert!(actor.name().starts_with("faulty("));
    }

    #[test]
    fn revive_makes_a_crash_resumable() {
        let mut actor = FaultyActor::new(Box::new(Echo), FaultPlan::after(2, FaultKind::Crash), 7);
        let mut ctx = TestContext::new(ProcessId(0));
        for i in 0..4u8 {
            actor.on_message(&mut ctx, ProcessId(1), vec![i; 4].into());
        }
        assert_eq!(ctx.sent.len(), 2, "crashed after two clean events");
        actor.revive();
        actor.revive(); // idempotent
        actor.on_message(&mut ctx, ProcessId(1), vec![9; 4].into());
        assert_eq!(ctx.sent.len(), 3, "revived victim answers again");
        assert_eq!(actor.stats().revived, 1);
        actor.rearm();
        actor.on_message(&mut ctx, ProcessId(1), vec![10; 4].into());
        assert_eq!(ctx.sent.len(), 3, "re-armed crash swallows again");
    }

    #[test]
    fn on_recover_revives_the_victim() {
        /// Records whether its own on_recover hook ran.
        struct Recoverable {
            recovered: bool,
        }
        impl Actor for Recoverable {
            fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
                ctx.send(from, payload);
            }
            fn on_recover(&mut self, _ctx: &mut dyn Context) {
                self.recovered = true;
            }
        }
        let mut actor = FaultyActor::new(
            Box::new(Recoverable { recovered: false }),
            FaultPlan::immediate(FaultKind::Crash),
            7,
        );
        let mut ctx = TestContext::new(ProcessId(0));
        actor.on_message(&mut ctx, ProcessId(1), vec![1].into());
        assert!(ctx.sent.is_empty());
        actor.on_recover(&mut ctx);
        actor.on_message(&mut ctx, ProcessId(1), vec![2].into());
        assert_eq!(ctx.sent.len(), 1, "recovered victim processes again");
        assert_eq!(actor.stats().revived, 1);
    }

    #[test]
    fn activation_threshold_is_respected() {
        let (actor, ctx) = drive(
            FaultPlan::after(3, FaultKind::DropOutputs { probability: 1.0 }),
            5,
        );
        assert_eq!(ctx.sent.len(), 3);
        assert_eq!(actor.stats().dropped, 2);
    }
}
