//! # fs-faults
//!
//! Fault injection for the fail-signal suite.  The paper's construction is
//! validated (here as in the original fail-silent work it builds on,
//! \[SSKXBI01\]) by injecting authenticated-Byzantine faults at a single node
//! and checking that the surrounding machinery either masks them or converts
//! them into the process's unique fail-signal.
//!
//! The injector wraps any actor — typically one wrapper object of a
//! fail-signal pair, or a crash-tolerant NSO — and tampers with its
//! behaviour according to a [`FaultPlan`]: corrupting, dropping or
//! duplicating its outputs, crashing it silently, or making it babble
//! arbitrary messages (which, aimed at a destination with the fail-signal
//! payload, models the paper's fs2 property — spontaneous fail-signal
//! emission).
//!
//! An injected [`FaultKind::Crash`] is **resumable**: while active the
//! victim neither processes nor answers, but [`FaultyActor::revive`]
//! disarms the plan so the victim resumes from its retained state (counted
//! in [`InjectionStats::revived`]; [`FaultyActor::rearm`] re-arms it).  The
//! lifecycle plane's warm restart calls the revive hook automatically via
//! `on_recover`, so a crash-injected member scheduled to recover really
//! does come back — the substrate of the recovery and rolling-restart
//! scenarios.
//!
//! ## Example
//!
//! ```
//! use fs_common::id::ProcessId;
//! use fs_common::Bytes;
//! use fs_faults::{FaultKind, FaultPlan, FaultyActor};
//! use fs_simnet::actor::{Actor, Context, TestContext};
//!
//! struct Echo;
//! impl Actor for Echo {
//!     fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
//!         ctx.send(from, payload);
//!     }
//! }
//!
//! // A victim that silently crashes after its second message.
//! let mut victim = FaultyActor::new(Box::new(Echo), FaultPlan::after(2, FaultKind::Crash), 1);
//! let mut ctx = TestContext::new(ProcessId(0));
//! for i in 0..5u8 {
//!     victim.on_message(&mut ctx, ProcessId(1), vec![i].into());
//! }
//! assert_eq!(ctx.sent.len(), 2); // everything after the crash is lost
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod injector;

pub use injector::{FaultKind, FaultPlan, FaultyActor, InjectionStats};
