//! Injector coverage against a real fail-signal pair: every [`FaultKind`]
//! variant is injected into the follower wrapper of an FS pair running on
//! the simulator, and the test asserts both the [`InjectionStats`] counters
//! (the injector did what the plan said) and the pair-level outcome (the
//! fault was masked or converted into the pair's fail-signal).

use std::sync::Arc;

use fs_common::Bytes;

use failsignal::message::FsoInbound;
use failsignal::provision::{FsPairBuilder, FsPairSpec};
use failsignal::receiver::{FsDelivery, FsReceiver};
use fs_common::codec::Wire;
use fs_common::config::TimingAssumptions;
use fs_common::id::{FsId, ProcessId};
use fs_common::rng::DetRng;
use fs_common::time::{SimDuration, SimTime};
use fs_crypto::cost::CryptoCostModel;
use fs_crypto::keys::{provision, SignerId};
use fs_faults::{FaultKind, FaultPlan, FaultyActor, InjectionStats};
use fs_simnet::actor::{Actor, Context, TimerId};
use fs_simnet::node::NodeConfig;
use fs_simnet::sim::Simulation;
use fs_smr::machine::{EchoMachine, Endpoint};

const LEADER: ProcessId = ProcessId(0);
const FOLLOWER: ProcessId = ProcessId(1);
const CLIENT: ProcessId = ProcessId(2);
const DESTINATION: ProcessId = ProcessId(3);
const REQUESTS: u32 = 10;

/// Collects and validates whatever the FS pair emits.
struct Destination {
    receiver: FsReceiver,
    outputs: Vec<Vec<u8>>,
    fail_signals: Vec<FsId>,
}

impl Actor for Destination {
    fn on_message(&mut self, _ctx: &mut dyn Context, _from: ProcessId, payload: Bytes) {
        match self.receiver.accept(&payload) {
            Some(FsDelivery::Output { bytes, .. }) => self.outputs.push(bytes.to_vec()),
            Some(FsDelivery::FailSignal { fs }) => self.fail_signals.push(fs),
            None => {}
        }
    }
}

/// Feeds a fixed number of requests to both wrappers at a fixed cadence.
struct Client {
    sent: u32,
}

impl Actor for Client {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        ctx.set_timer(SimDuration::from_millis(5), TimerId(1));
    }
    fn on_message(&mut self, _ctx: &mut dyn Context, _from: ProcessId, _payload: Bytes) {}
    fn on_timer(&mut self, ctx: &mut dyn Context, _timer: TimerId) {
        if self.sent >= REQUESTS {
            return;
        }
        let request = FsoInbound::Raw(format!("req-{}", self.sent).into()).to_wire();
        ctx.send(LEADER, request.clone());
        ctx.send(FOLLOWER, request);
        self.sent += 1;
        ctx.set_timer(SimDuration::from_millis(15), TimerId(1));
    }
}

/// What one injection campaign observed.
struct Outcome {
    stats: InjectionStats,
    outputs: Vec<Vec<u8>>,
    fail_signals: Vec<FsId>,
}

/// Builds a pair around two echo machines, wraps the follower in a
/// [`FaultyActor`] with the given plan, runs the campaign, and returns the
/// injector's counters together with what the destination observed.
fn run_wrapped_pair(plan: FaultPlan) -> Outcome {
    let mut rng = DetRng::new(123);
    let (mut keys, directory) = provision([LEADER, FOLLOWER], &mut rng);
    let spec = FsPairSpec::new(FsId(1), LEADER, FOLLOWER);
    let timing = TimingAssumptions::new(SimDuration::from_millis(50), 3.0, 3.0).unwrap();
    let (leader, follower) = FsPairBuilder::new(spec)
        .timing(timing)
        .crypto_costs(CryptoCostModel::modern_hmac())
        .trust_client(CLIENT, Endpoint::LocalApp)
        .route(Endpoint::LocalApp, vec![DESTINATION])
        .build(
            keys.remove(&SignerId(LEADER)).unwrap(),
            keys.remove(&SignerId(FOLLOWER)).unwrap(),
            Arc::clone(&directory),
            (Box::new(EchoMachine::new(0)), Box::new(EchoMachine::new(0))),
        );

    let mut sim = Simulation::new(9);
    let node_a = sim.add_node(NodeConfig::era_2003());
    let node_b = sim.add_node(NodeConfig::era_2003());
    let node_c = sim.add_node(NodeConfig::era_2003());
    sim.spawn_with(LEADER, node_a, Box::new(leader));
    sim.spawn_with(
        FOLLOWER,
        node_b,
        Box::new(FaultyActor::new(Box::new(follower), plan, 77)),
    );
    sim.spawn_with(CLIENT, node_c, Box::new(Client { sent: 0 }));
    let mut receiver = FsReceiver::new(directory);
    receiver.register_source(FsId(1), spec.signers());
    sim.spawn_with(
        DESTINATION,
        node_c,
        Box::new(Destination {
            receiver,
            outputs: Vec::new(),
            fail_signals: Vec::new(),
        }),
    );

    sim.run_until(SimTime::from_secs(60));
    let stats = sim
        .actor::<FaultyActor>(FOLLOWER)
        .expect("wrapped follower")
        .stats();
    let destination = sim.actor::<Destination>(DESTINATION).expect("destination");
    Outcome {
        stats,
        outputs: destination.outputs.clone(),
        fail_signals: destination.fail_signals.clone(),
    }
}

#[test]
fn inactive_plan_leaves_counters_clean() {
    let outcome = run_wrapped_pair(FaultPlan::after(u64::MAX, FaultKind::Crash));
    assert_eq!(outcome.outputs.len(), REQUESTS as usize);
    assert!(outcome.fail_signals.is_empty());
    assert_eq!(outcome.stats.faulty_events, 0);
    assert!(
        outcome.stats.clean_events > 0,
        "the wrapper processed traffic"
    );
    assert_eq!(outcome.stats.corrupted, 0);
    assert_eq!(outcome.stats.dropped, 0);
    assert_eq!(outcome.stats.duplicated, 0);
    assert_eq!(outcome.stats.babbled, 0);
}

#[test]
fn corrupt_outputs_counts_corruptions_and_triggers_fail_signal() {
    let outcome = run_wrapped_pair(FaultPlan::after(
        6,
        FaultKind::CorruptOutputs { probability: 1.0 },
    ));
    assert!(outcome.stats.corrupted > 0, "corruption fault must fire");
    assert!(outcome.stats.clean_events > 0 && outcome.stats.faulty_events > 0);
    assert_eq!(
        outcome.fail_signals,
        vec![FsId(1)],
        "pair must convert corruption to fail-signal"
    );
    assert!(outcome.outputs.len() < REQUESTS as usize);
}

#[test]
fn drop_outputs_counts_drops_and_triggers_fail_signal() {
    let outcome = run_wrapped_pair(FaultPlan::after(
        4,
        FaultKind::DropOutputs { probability: 1.0 },
    ));
    assert!(outcome.stats.dropped > 0, "drop fault must fire");
    assert!(outcome.stats.faulty_events > 0);
    assert_eq!(outcome.fail_signals, vec![FsId(1)]);
}

#[test]
fn duplicate_outputs_counts_duplicates_and_is_masked() {
    let outcome = run_wrapped_pair(FaultPlan::immediate(FaultKind::DuplicateOutputs));
    assert!(outcome.stats.duplicated > 0, "duplication fault must fire");
    assert_eq!(
        outcome.stats.clean_events, 0,
        "immediate plan: no clean events"
    );
    assert_eq!(
        outcome.outputs.len(),
        REQUESTS as usize,
        "duplication is masked"
    );
    assert!(outcome.fail_signals.is_empty());
}

#[test]
fn crash_counts_swallowed_events_and_triggers_fail_signal() {
    let outcome = run_wrapped_pair(FaultPlan::after(4, FaultKind::Crash));
    assert!(
        outcome.stats.faulty_events > 0,
        "events must be swallowed by the crash"
    );
    assert_eq!(outcome.stats.clean_events, 4);
    assert_eq!(outcome.fail_signals, vec![FsId(1)]);
    assert!(outcome.outputs.len() < REQUESTS as usize);
}

#[test]
fn babble_counts_garbage_and_is_rejected_by_validation() {
    let outcome = run_wrapped_pair(FaultPlan::immediate(FaultKind::Babble {
        target: DESTINATION,
        payload: b"not a valid double-signed output"[..].into(),
    }));
    assert!(outcome.stats.babbled > 0, "babble fault must fire");
    assert_eq!(
        outcome.stats.babbled, outcome.stats.faulty_events,
        "one garbage message per handled event"
    );
    assert_eq!(
        outcome.outputs.len(),
        REQUESTS as usize,
        "real outputs still get through"
    );
    assert!(
        outcome.fail_signals.is_empty(),
        "unauthenticated garbage is silently rejected"
    );
}
