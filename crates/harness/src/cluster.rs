//! The sharded multi-group **cluster** layer: many independent FS/crash
//! groups (shards) side by side on one runtime, a key partitioner, and a
//! client-side router that drives open-loop load across all of them.
//!
//! The paper prices the crash → authenticated-Byzantine lift for a *single*
//! replicated group; this module composes that per-group cost model into
//! system-level throughput.  A [`Cluster`] builder instantiates `N`
//! independent [`SequencedKv`](fs_smr::sequenced::SequencedKv) groups on one
//! runtime (simulator or threaded), each assembled by the exact same
//! [`Scenario`] machinery as a standalone run — same pid scheme (offset per
//! shard), same fault plane, same protocols.  A [`ClusterRouter`] actor
//! admits an open-loop arrival stream (the PR 6 admission machinery), keys
//! every command, routes it to the owning shard via the [`Partitioner`],
//! and measures end-to-end ordering latency per shard.
//!
//! # Routing semantics
//!
//! Each command is a keyed `Put` on exactly one shard: the router submits
//! it to the shard's entry driver (member 0's workload driver), which
//! orders it through that shard's sequencer and echoes a completion when
//! the *ordered* entry is applied locally.  Commands never span shards, so
//! a shard's crash stalls only the keys it owns: the router's in-flight
//! count for that shard grows while every other shard keeps serving — the
//! deployment-scale availability argument, observable in
//! [`RunningCluster::shard_load`].
//!
//! # Retry and expiry
//!
//! By default a command stranded by a shard outage stays in flight forever
//! (the fault-isolation observable above).  Arming
//! [`Cluster::command_deadline`] turns that into availability: the router
//! sweeps its pending window every half-deadline, resubmits overdue
//! commands (same router sequence number — the entry driver deduplicates,
//! and a keyed `Put` is idempotent anyway) up to
//! [`Cluster::max_retries`] times, then expires them, freeing the issuing
//! client's admission slot.  [`ShardLoad`] accounts the outcome per shard
//! (`retried`/`expired`), and `in_flight()` drains to zero even when the
//! shard never comes back.
//!
//! # Snapshot consistency contract
//!
//! [`Cluster::snapshot_at`] makes the router fan one sequenced
//! [`KvCommand::Frontier`](fs_smr::command::KvCommand::Frontier) read to
//! every shard and assemble the responses into a [`ClusterSnapshot`].  Each
//! shard's [`ShardFrontier`] is a *consistent cut of that shard's ordered
//! history* — the read rides the ordered stream, so it reflects exactly the
//! commands sequenced before it and none after.  Across shards the snapshot
//! is a vector of such cuts taken at slightly different instants, not a
//! global serialization point: keys on different shards may reflect
//! different wall-clock moments, but every per-shard view is internally
//! exact and reproducible from its `(applied, digest)` pair.

use std::collections::BTreeMap;

use fs_common::codec::{Decoder, Encoder, Wire};
use fs_common::error::CodecError;
use fs_common::id::{MemberId, ProcessId};
use fs_common::rng::DetRng;
use fs_common::time::{SimDuration, SimTime};
use fs_common::Bytes;
use fs_simnet::actor::{Actor, Context, TimerId};
use fs_simnet::lifecycle::LifecycleSchedule;
use fs_simnet::link::{LinkModel, LinkSchedule, Topology};
use fs_simnet::load::{AdmissionGate, ArrivalPacer, LoadStats};
use fs_simnet::node::NodeConfig;
use fs_simnet::sched::SchedulerKind;
use fs_simnet::sim::Simulation;
use fs_simnet::threaded::{ThreadedBuilder, ThreadedConfig};
use fs_simnet::trace::{LatencyRecorder, LatencySummary, NetStats, TraceLog};

use crate::faults::FaultSchedule;
use crate::scenario::{MemberProcs, Protocol, RuntimeKind, RuntimeSlot, Scenario};
use crate::service::SmrKvService;
use crate::workload::Workload;

/// The router's fixed process identifier (shard pids start at
/// [`PID_STRIDE`], so 0 is never a shard process).
pub const ROUTER_PID: ProcessId = ProcessId(0);

/// Process-identifier stride between shards: shard `s` owns the pid block
/// `[(s + 1) * PID_STRIDE, (s + 2) * PID_STRIDE)`.  At 4 pids per
/// fail-signal member this caps a shard at 256 members — far beyond the
/// `2f + 1` groups the paper considers.
pub const PID_STRIDE: u32 = 1024;

/// Timer driving the router's arrival process.
const TIMER_ARRIVAL: TimerId = TimerId(300);

/// Timer firing the scheduled multi-shard snapshot read.
const TIMER_SNAPSHOT: TimerId = TimerId(301);
/// Router retry sweep: scans the in-flight window for commands past their
/// deadline (armed only when a command deadline is configured).
const TIMER_RETRY: TimerId = TimerId(302);

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

/// A deterministic key → shard map over `SequencedKv` string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partitioner {
    /// FNV-1a hash of the key, modulo the shard count.
    Hash {
        /// Number of shards keys are spread over.
        shards: u32,
    },
    /// Ordered key ranges: a key belongs to the first bound it sorts below;
    /// keys at or above every bound go to the last shard
    /// (`bounds.len() + 1` shards in total).
    KeyRange {
        /// The ascending range boundaries.
        bounds: Vec<String>,
    },
}

impl Partitioner {
    /// Hash partitioning over `shards` shards.
    pub fn hash(shards: u32) -> Self {
        assert!(shards >= 1, "a cluster needs at least one shard");
        Partitioner::Hash { shards }
    }

    /// Range partitioning with the given ascending bounds
    /// (`bounds.len() + 1` shards).
    pub fn key_range(bounds: Vec<String>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "range bounds must be strictly ascending"
        );
        Partitioner::KeyRange { bounds }
    }

    /// The number of shards this partitioner spreads keys over.
    pub fn shards(&self) -> u32 {
        match self {
            Partitioner::Hash { shards } => *shards,
            Partitioner::KeyRange { bounds } => bounds.len() as u32 + 1,
        }
    }

    /// The shard owning `key`.  Pure and total: the same key always maps to
    /// the same shard, so tests can pin assignments byte-for-byte.
    pub fn shard_of(&self, key: &str) -> u32 {
        match self {
            Partitioner::Hash { shards } => {
                let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
                for b in key.as_bytes() {
                    acc = (acc ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
                }
                (acc % u64::from(*shards)) as u32
            }
            Partitioner::KeyRange { bounds } => {
                bounds.partition_point(|b| b.as_str() <= key) as u32
            }
        }
    }

    /// The stable key → shard assignment for a whole key set, in input
    /// order — the inspection surface the determinism tests pin.
    pub fn assignment(&self, keys: &[String]) -> Vec<(String, u32)> {
        keys.iter().map(|k| (k.clone(), self.shard_of(k))).collect()
    }
}

/// The deterministic key stream the router draws from: key `i` of a run
/// with arrival seed `s` is `router_keys(s, i + 1)[i]`, on every runtime
/// and scheduler.  Exposed so tests can predict shard assignments without
/// running anything.
pub fn router_keys(arrival_seed: u64, count: usize) -> Vec<String> {
    let mut rng = DetRng::new(arrival_seed ^ 0x6b65_7973); // "keys"
    (0..count)
        .map(|_| format!("k{:016x}", rng.next_u64_raw()))
        .collect()
}

// ---------------------------------------------------------------------------
// Router <-> shard-driver wire protocol
// ---------------------------------------------------------------------------

/// The wire protocol between the cluster router and each shard's entry
/// driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterMsg {
    /// Router → driver: submit a keyed write on this shard.
    Submit {
        /// The router's own sequence number, echoed back on completion.
        router_seq: u64,
        /// The key (already partitioned to this shard).
        key: String,
        /// The value payload.
        value: Vec<u8>,
    },
    /// Driver → router: the routed command was ordered and applied.
    Done {
        /// The router sequence number of the completed command.
        router_seq: u64,
    },
    /// Router → driver: submit a sequenced frontier read for snapshot `req`.
    SnapRead {
        /// The snapshot request identifier.
        req: u64,
    },
    /// Driver → router: the shard's frontier at the sequenced read point.
    SnapResp {
        /// The snapshot request identifier.
        req: u64,
        /// Commands applied at the read point (the read itself included).
        applied: u64,
        /// Keys stored at the read point.
        keys: u64,
        /// State digest at the read point.
        digest: u64,
    },
}

impl Wire for ClusterMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ClusterMsg::Submit {
                router_seq,
                key,
                value,
            } => {
                enc.put_u8(0);
                enc.put_u64(*router_seq);
                enc.put_str(key);
                enc.put_bytes(value);
            }
            ClusterMsg::Done { router_seq } => {
                enc.put_u8(1);
                enc.put_u64(*router_seq);
            }
            ClusterMsg::SnapRead { req } => {
                enc.put_u8(2);
                enc.put_u64(*req);
            }
            ClusterMsg::SnapResp {
                req,
                applied,
                keys,
                digest,
            } => {
                enc.put_u8(3);
                enc.put_u64(*req);
                enc.put_u64(*applied);
                enc.put_u64(*keys);
                enc.put_u64(*digest);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(ClusterMsg::Submit {
                router_seq: dec.get_u64()?,
                key: dec.get_str()?.to_owned(),
                value: dec.get_bytes_owned()?,
            }),
            1 => Ok(ClusterMsg::Done {
                router_seq: dec.get_u64()?,
            }),
            2 => Ok(ClusterMsg::SnapRead {
                req: dec.get_u64()?,
            }),
            3 => Ok(ClusterMsg::SnapResp {
                req: dec.get_u64()?,
                applied: dec.get_u64()?,
                keys: dec.get_u64()?,
                digest: dec.get_u64()?,
            }),
            t => Err(CodecError::UnknownTag(t)),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot types
// ---------------------------------------------------------------------------

/// One shard's contribution to a [`ClusterSnapshot`]: a consistent cut of
/// that shard's ordered history (see the module-level contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFrontier {
    /// The shard index.
    pub shard: u32,
    /// Commands applied at the sequenced read point.
    pub applied: u64,
    /// Keys stored at the read point.
    pub keys: u64,
    /// State digest at the read point.
    pub digest: u64,
}

/// A completed multi-shard read snapshot: one [`ShardFrontier`] per shard,
/// in shard order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// When the router fanned the frontier reads out.
    pub requested_at: SimTime,
    /// When the last shard's frontier arrived.
    pub completed_at: SimTime,
    /// Every shard's frontier, indexed by shard.
    pub shards: Vec<ShardFrontier>,
}

// ---------------------------------------------------------------------------
// Router actor
// ---------------------------------------------------------------------------

/// Per-shard router-side load tracking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Commands routed to the shard.
    pub submitted: u64,
    /// Completions received back from the shard.
    pub completed: u64,
    /// Deadline-triggered resubmissions of still-pending commands (counted
    /// per resubmission, not per command; zero unless the cluster sets a
    /// command deadline).
    pub retried: u64,
    /// Commands abandoned after exhausting their retry budget.
    pub expired: u64,
}

impl ShardLoad {
    /// Commands submitted but neither completed nor expired.  Without a
    /// command deadline this grows without bound while the shard is down —
    /// exactly the observable the fault-isolation scenarios assert on; with
    /// one, expiry returns the window to zero and the loss shows up in
    /// [`ShardLoad::expired`] instead.
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.completed - self.expired
    }
}

/// A routed command awaiting completion, kept for deadline-triggered
/// resubmission (only when the cluster configures a command deadline).
#[derive(Debug, Clone)]
struct PendingCommand {
    key: String,
    value: Vec<u8>,
    attempts: u32,
    due: SimTime,
}

/// The client-side router: admits the open-loop arrival stream, keys and
/// routes each command to its shard's entry driver, and tracks per-shard
/// in-flight windows and end-to-end ordering latency.
pub struct ClusterRouter {
    workload: Workload,
    partitioner: Partitioner,
    /// Shard → entry driver (member 0's workload driver).
    entries: Vec<ProcessId>,
    /// Reverse map: entry driver → shard, for classifying completions.
    shard_of_entry: BTreeMap<ProcessId, u32>,
    pacer: ArrivalPacer,
    gate: AdmissionGate,
    key_rng: DetRng,
    offered: u64,
    next_seq: u64,
    sent_at: BTreeMap<u64, SimTime>,
    shard_of_seq: BTreeMap<u64, u32>,
    client_of: BTreeMap<u64, u32>,
    /// Per-command deadline and retry budget; `None` disables the retry
    /// plane entirely (no pending copies, no sweep timer).
    retry: Option<(SimDuration, u32)>,
    /// In-flight commands kept for resubmission, by router sequence.
    pending: BTreeMap<u64, PendingCommand>,
    loads: Vec<ShardLoad>,
    latencies: LatencyRecorder,
    shard_latencies: Vec<LatencyRecorder>,
    first_submit_at: Option<SimTime>,
    last_done_at: Option<SimTime>,
    snapshot_at: Option<SimTime>,
    next_snap_req: u64,
    snap_requested_at: BTreeMap<u64, SimTime>,
    snap_pending: BTreeMap<u64, BTreeMap<u32, ShardFrontier>>,
    snapshots: Vec<ClusterSnapshot>,
}

impl std::fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRouter")
            .field("shards", &self.entries.len())
            .field("offered", &self.offered)
            .field("submitted", &self.next_seq)
            .finish()
    }
}

impl ClusterRouter {
    /// Creates a router over the given per-shard entry drivers.
    fn new(
        workload: Workload,
        partitioner: Partitioner,
        entries: Vec<ProcessId>,
        snapshot_at: Option<SimTime>,
        retry: Option<(SimDuration, u32)>,
    ) -> Self {
        let shards = entries.len();
        let pacer_rng = DetRng::new(workload.arrival_seed).derive(0x7075_7465); // "route"
        let shard_of_entry = entries
            .iter()
            .enumerate()
            .map(|(s, &pid)| (pid, s as u32))
            .collect();
        Self {
            pacer: ArrivalPacer::with_rng(workload.arrival, workload.interval, pacer_rng)
                .anchored(workload.drift_free_pacing),
            gate: AdmissionGate::new(workload.clients, workload.max_in_flight, workload.admission),
            key_rng: DetRng::new(workload.arrival_seed ^ 0x6b65_7973),
            workload,
            partitioner,
            entries,
            shard_of_entry,
            offered: 0,
            next_seq: 0,
            sent_at: BTreeMap::new(),
            shard_of_seq: BTreeMap::new(),
            client_of: BTreeMap::new(),
            retry,
            pending: BTreeMap::new(),
            loads: vec![ShardLoad::default(); shards],
            latencies: LatencyRecorder::new(),
            shard_latencies: vec![LatencyRecorder::new(); shards],
            first_submit_at: None,
            last_done_at: None,
            snapshot_at,
            next_snap_req: 0,
            snap_requested_at: BTreeMap::new(),
            snap_pending: BTreeMap::new(),
            snapshots: Vec::new(),
        }
    }

    /// Arrivals generated so far (admitted or not).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Commands routed so far, across all shards.
    pub fn submitted(&self) -> u64 {
        self.next_seq
    }

    /// Completions received so far, across all shards.
    pub fn completed(&self) -> u64 {
        self.loads.iter().map(|l| l.completed).sum()
    }

    /// Per-shard submitted/completed counters, indexed by shard.
    pub fn shard_loads(&self) -> &[ShardLoad] {
        &self.loads
    }

    /// End-to-end ordering latencies across every shard.
    pub fn latencies(&self) -> &LatencyRecorder {
        &self.latencies
    }

    /// End-to-end ordering latencies of one shard.
    pub fn shard_latencies(&self, shard: u32) -> Option<&LatencyRecorder> {
        self.shard_latencies.get(shard as usize)
    }

    /// The admission counters of the router's gate.
    pub fn load_stats(&self) -> LoadStats {
        self.gate.stats()
    }

    /// When the first command was routed, if any.
    pub fn first_submit_at(&self) -> Option<SimTime> {
        self.first_submit_at
    }

    /// When the last completion arrived, if any.
    pub fn last_done_at(&self) -> Option<SimTime> {
        self.last_done_at
    }

    /// The completed multi-shard snapshots, in completion order.
    pub fn snapshots(&self) -> &[ClusterSnapshot] {
        &self.snapshots
    }

    /// One tick of the arrival process, mirroring `SmrDriver::next_arrival`.
    fn next_arrival(&mut self, ctx: &mut dyn Context) {
        if self.offered >= self.workload.messages {
            return;
        }
        self.offered += 1;
        if let Some(client) = self.gate.arrive() {
            self.submit(ctx, client);
        }
        if self.offered < self.workload.messages {
            ctx.set_timer(self.pacer.next_gap_from(ctx.now()), TIMER_ARRIVAL);
        }
    }

    /// Keys, routes and tracks one admitted command.
    fn submit(&mut self, ctx: &mut dyn Context, client: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = format!("k{:016x}", self.key_rng.next_u64_raw());
        let shard = self.partitioner.shard_of(&key);
        let mut value = vec![0xa5u8; self.workload.payload_size];
        value
            .iter_mut()
            .zip(seq.to_le_bytes())
            .for_each(|(v, b)| *v = b);
        let now = ctx.now();
        self.first_submit_at.get_or_insert(now);
        self.sent_at.insert(seq, now);
        self.shard_of_seq.insert(seq, shard);
        self.client_of.insert(seq, client);
        self.loads[shard as usize].submitted += 1;
        if let Some((deadline, _)) = self.retry {
            self.pending.insert(
                seq,
                PendingCommand {
                    key: key.clone(),
                    value: value.clone(),
                    attempts: 0,
                    due: now.saturating_add(deadline),
                },
            );
        }
        ctx.send(
            self.entries[shard as usize],
            ClusterMsg::Submit {
                router_seq: seq,
                key,
                value,
            }
            .to_wire(),
        );
    }

    /// Scans the in-flight window for commands past their deadline:
    /// resubmits those with retry budget left (same router sequence — the
    /// shard-side driver deduplicates, and a keyed `Put` is idempotent
    /// anyway) and expires the rest, freeing their client slots.
    fn sweep_deadlines(&mut self, ctx: &mut dyn Context) {
        let Some((deadline, max_retries)) = self.retry else {
            return;
        };
        let now = ctx.now();
        let due: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.due <= now)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in due {
            let shard = self.shard_of_seq[&seq] as usize;
            let entry = self.pending.get_mut(&seq).expect("swept seq is pending");
            if entry.attempts < max_retries {
                entry.attempts += 1;
                entry.due = now.saturating_add(deadline);
                self.loads[shard].retried += 1;
                ctx.send(
                    self.entries[shard],
                    ClusterMsg::Submit {
                        router_seq: seq,
                        key: entry.key.clone(),
                        value: entry.value.clone(),
                    }
                    .to_wire(),
                );
            } else {
                self.pending.remove(&seq);
                self.sent_at.remove(&seq);
                self.shard_of_seq.remove(&seq);
                self.loads[shard].expired += 1;
                if let Some(client) = self.client_of.remove(&seq) {
                    if self.gate.complete(client) {
                        self.submit(ctx, client);
                    }
                }
            }
        }
        // Keep sweeping while anything can still enter or leave the window;
        // going quiet once the run has drained lets the runtimes settle.
        if !self.pending.is_empty() || self.offered < self.workload.messages {
            ctx.set_timer(deadline / 2, TIMER_RETRY);
        }
    }

    /// Fans one sequenced frontier read to every shard.
    fn fan_snapshot(&mut self, ctx: &mut dyn Context) {
        let req = self.next_snap_req;
        self.next_snap_req += 1;
        self.snap_requested_at.insert(req, ctx.now());
        self.snap_pending.insert(req, BTreeMap::new());
        for &entry in &self.entries {
            ctx.send(entry, ClusterMsg::SnapRead { req }.to_wire());
        }
    }

    /// Accounts one completion echoed back by shard `shard`.
    fn on_done(&mut self, ctx: &mut dyn Context, shard: u32, router_seq: u64) {
        let Some(sent) = self.sent_at.remove(&router_seq) else {
            return; // duplicate or unknown completion
        };
        let now = ctx.now();
        self.last_done_at = Some(now);
        self.shard_of_seq.remove(&router_seq);
        self.pending.remove(&router_seq);
        self.loads[shard as usize].completed += 1;
        self.latencies.record_span(sent, now);
        self.shard_latencies[shard as usize].record_span(sent, now);
        if let Some(client) = self.client_of.remove(&router_seq) {
            if self.gate.complete(client) {
                // The completion hands its slot to a blocked arrival.
                self.submit(ctx, client);
            }
        }
    }
}

impl Actor for ClusterRouter {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if self.workload.messages > 0 {
            ctx.set_timer(self.workload.start_delay, TIMER_ARRIVAL);
            if let Some((deadline, _)) = self.retry {
                ctx.set_timer(
                    self.workload.start_delay.saturating_add(deadline),
                    TIMER_RETRY,
                );
            }
        }
        if let Some(at) = self.snapshot_at {
            ctx.set_timer(at.duration_since(ctx.now()), TIMER_SNAPSHOT);
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Context, timer: TimerId) {
        if timer == TIMER_ARRIVAL {
            self.next_arrival(ctx);
        } else if timer == TIMER_RETRY {
            self.sweep_deadlines(ctx);
        } else if timer == TIMER_SNAPSHOT {
            self.fan_snapshot(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
        let Some(&shard) = self.shard_of_entry.get(&from) else {
            return; // not a shard entry: dropped
        };
        match ClusterMsg::from_wire(&payload) {
            Ok(ClusterMsg::Done { router_seq }) => self.on_done(ctx, shard, router_seq),
            Ok(ClusterMsg::SnapResp {
                req,
                applied,
                keys,
                digest,
            }) => {
                let frontier = ShardFrontier {
                    shard,
                    applied,
                    keys,
                    digest,
                };
                if let Some(pending) = self.snap_pending.get_mut(&req) {
                    pending.insert(shard, frontier);
                    if pending.len() == self.entries.len() {
                        let pending = self.snap_pending.remove(&req).expect("pending");
                        let requested_at = self
                            .snap_requested_at
                            .remove(&req)
                            .expect("snapshot request time");
                        self.snapshots.push(ClusterSnapshot {
                            requested_at,
                            completed_at: ctx.now(),
                            shards: pending.into_values().collect(),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> String {
        format!("cluster-router({})", self.entries.len())
    }
}

// ---------------------------------------------------------------------------
// Cluster builder
// ---------------------------------------------------------------------------

/// A typed builder for a sharded cluster: `shards` independent
/// [`SmrKvService`] groups on one runtime, driven by one [`ClusterRouter`].
pub struct Cluster {
    shards: u32,
    members_per_shard: u32,
    runtime: RuntimeKind,
    protocol: Protocol,
    partitioner: Option<Partitioner>,
    workload: Workload,
    shard_faults: BTreeMap<u32, FaultSchedule>,
    node: NodeConfig,
    router_node: NodeConfig,
    seed: u64,
    scheduler: SchedulerKind,
    topology: Option<Topology>,
    snapshot_at: Option<SimTime>,
    command_deadline: Option<SimDuration>,
    max_retries: u32,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("shards", &self.shards)
            .field("members_per_shard", &self.members_per_shard)
            .field("runtime", &self.runtime)
            .field("protocol", &self.protocol)
            .finish()
    }
}

impl Cluster {
    /// Starts a cluster of `shards` groups of `members_per_shard` members
    /// each, with hash partitioning, the paper's defaults on every other
    /// axis, and an idealised (cost-free) router node so the load generator
    /// never caps the scaling curve.
    pub fn new(shards: u32, members_per_shard: u32) -> Self {
        assert!(shards >= 1, "a cluster needs at least one shard");
        assert!(members_per_shard >= 1, "a shard needs at least one member");
        Self {
            shards,
            members_per_shard,
            runtime: RuntimeKind::Sim,
            protocol: Protocol::Crash,
            partitioner: None,
            workload: Workload::paper_default(),
            shard_faults: BTreeMap::new(),
            node: NodeConfig::era_2003(),
            router_node: NodeConfig::ideal(),
            seed: 2003,
            scheduler: SchedulerKind::default(),
            topology: None,
            snapshot_at: None,
            command_deadline: None,
            max_retries: 2,
        }
    }

    /// Sets a per-command deadline on the router: a routed command that has
    /// not completed within this budget is resubmitted (up to
    /// [`Cluster::max_retries`] times, same router sequence — the shard-side
    /// driver deduplicates) and then abandoned, surfacing as
    /// [`ShardLoad::retried`] / [`ShardLoad::expired`].  Off by default:
    /// without a deadline, commands stranded by a shard outage pin
    /// [`ShardLoad::in_flight`] forever, which is the fault-isolation
    /// observable the no-retry scenarios assert on.
    #[must_use]
    pub fn command_deadline(mut self, deadline: SimDuration) -> Self {
        self.command_deadline = Some(deadline);
        self
    }

    /// Bounds the resubmissions per command under
    /// [`Cluster::command_deadline`] (default 2).
    #[must_use]
    pub fn max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Selects the runtime.
    #[must_use]
    pub fn runtime(mut self, runtime: RuntimeKind) -> Self {
        self.runtime = runtime;
        self
    }

    /// Selects the fault-tolerance protocol every shard runs.
    #[must_use]
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the partitioner (default: hash over the shard count).
    ///
    /// # Panics
    ///
    /// At build time, when the partitioner's shard count differs from the
    /// cluster's.
    #[must_use]
    pub fn partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = Some(partitioner);
        self
    }

    /// Sets the router-level workload: `messages` is the *cluster-wide*
    /// offered command count and `interval` the aggregate arrival gap
    /// (shards then share that stream per the partitioner).
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets shard `shard`'s fault schedule (member indices are local to the
    /// shard).  Other shards stay fault-free — the isolation scenarios
    /// crash one shard's sequencer while the rest keep serving.
    #[must_use]
    pub fn shard_faults(mut self, shard: u32, faults: FaultSchedule) -> Self {
        self.shard_faults.insert(shard, faults);
        self
    }

    /// Sets the per-node configuration of every shard node.
    #[must_use]
    pub fn node_config(mut self, node: NodeConfig) -> Self {
        self.node = node;
        self
    }

    /// Sets the router node's configuration (default
    /// [`NodeConfig::ideal`]).
    #[must_use]
    pub fn router_node_config(mut self, node: NodeConfig) -> Self {
        self.router_node = node;
        self
    }

    /// Sets the deterministic seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the simulator's future-event-set scheduler.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the deployment topology explicitly (default: the paper's
    /// lightly loaded 100 Mb/s LAN between every pair of nodes).  Node 0 is
    /// the router; shard `s`'s members start at node `1 + s * k` where `k`
    /// is the shard's node footprint.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Schedules one multi-shard read snapshot at `at` (see the
    /// module-level consistency contract).
    #[must_use]
    pub fn snapshot_at(mut self, at: SimTime) -> Self {
        self.snapshot_at = Some(at);
        self
    }

    /// Nodes one shard occupies under the current protocol and layout.
    fn nodes_per_shard(&self) -> u32 {
        match self.protocol {
            // Collapsed FS layout: one node per member (the scenario
            // default; the cluster layer does not expose the Full layout).
            Protocol::FailSignal => self.members_per_shard,
            Protocol::Crash => self.members_per_shard,
        }
    }

    /// The shard-local [`Scenario`] used to assemble shard `shard`.
    fn shard_scenario(&self, shard: u32) -> Scenario {
        // Shard drivers generate no load of their own (messages = 0): every
        // command arrives from the router.  Batch policy and payload shape
        // still come from the cluster workload.
        let mut shard_workload = self.workload;
        shard_workload.messages = 0;
        shard_workload.router = Some(ROUTER_PID);
        Scenario::new(SmrKvService::new())
            .members(self.members_per_shard)
            .protocol(self.protocol)
            .workload(shard_workload)
            .faults(
                self.shard_faults
                    .get(&shard)
                    .cloned()
                    .unwrap_or_else(FaultSchedule::none),
            )
            .node_config(self.node)
            // Independent key-provisioning and fault streams per shard.
            .seed(self.seed ^ (u64::from(shard).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Builds and starts the cluster, returning the running handle.
    ///
    /// # Panics
    ///
    /// Panics when the partitioner's shard count differs from the
    /// cluster's, or when a shard's fault schedule targets processes its
    /// protocol does not deploy.
    pub fn build(mut self) -> RunningCluster {
        if self.workload.arrival_seed == 0 {
            self.workload.arrival_seed = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        }
        // Threaded deployments pace against the absolute arrival plan (see
        // `Workload::drift_free_pacing`); the simulator keeps relative pacing.
        if self.runtime == RuntimeKind::Threaded {
            self.workload.drift_free_pacing = true;
        }
        let partitioner = self
            .partitioner
            .clone()
            .unwrap_or_else(|| Partitioner::hash(self.shards));
        assert_eq!(
            partitioner.shards(),
            self.shards,
            "partitioner covers {} shards but the cluster deploys {}",
            partitioner.shards(),
            self.shards,
        );
        for (shard, faults) in &self.shard_faults {
            assert!(
                *shard < self.shards,
                "fault schedule targets shard {shard}, which the cluster does not deploy"
            );
            for entry in faults.entries() {
                assert!(
                    FaultSchedule::target_applies(
                        entry.target,
                        self.protocol == Protocol::FailSignal
                    ),
                    "shard {shard} fault schedule targets {:?}, which the {:?} protocol does not deploy",
                    entry.target,
                    self.protocol,
                );
            }
        }

        let topology = self
            .topology
            .clone()
            .unwrap_or_else(|| Topology::new(LinkModel::lan_100mbps()));
        let nodes_per_shard = self.nodes_per_shard();
        let scenarios: Vec<Scenario> = (0..self.shards).map(|s| self.shard_scenario(s)).collect();

        let mut link_schedule = LinkSchedule::new();
        let mut lifecycle = LifecycleSchedule::new();
        let mut shard_members: Vec<Vec<MemberProcs>> = Vec::new();

        let slot = match self.runtime {
            RuntimeKind::Sim => {
                let mut sim = Simulation::with_scheduler(self.seed, topology, self.scheduler);
                let router_node = sim.add_node(self.router_node);
                for (s, scenario) in scenarios.iter().enumerate() {
                    let node_base = 1 + s as u32 * nodes_per_shard;
                    debug_assert_eq!(sim.node_count() as u32, node_base);
                    let members = scenario.assemble_at(&mut sim, pid_base(s as u32));
                    for event in scenario
                        .fault_schedule()
                        .compile_link_schedule_with_base(node_base)
                        .in_order()
                    {
                        link_schedule.push(event);
                    }
                    lifecycle.extend(scenario.compile_lifecycle(&members));
                    shard_members.push(members);
                }
                let router = self.make_router(&partitioner, &shard_members);
                sim.spawn_with(ROUTER_PID, router_node, Box::new(router));
                sim.apply_link_schedule(&link_schedule);
                sim.apply_lifecycle_schedule(lifecycle);
                RuntimeSlot::from_sim(sim)
            }
            RuntimeKind::Threaded => {
                let mut builder = ThreadedBuilder::new(ThreadedConfig {
                    cpu_charge_scale: 0.0,
                    seed: self.seed,
                })
                .with_topology(topology);
                let router_node = builder.add_node();
                for (s, scenario) in scenarios.iter().enumerate() {
                    let node_base = 1 + s as u32 * nodes_per_shard;
                    let members = scenario.assemble_at(&mut builder, pid_base(s as u32));
                    for event in scenario
                        .fault_schedule()
                        .compile_link_schedule_with_base(node_base)
                        .in_order()
                    {
                        link_schedule.push(event);
                    }
                    lifecycle.extend(scenario.compile_lifecycle(&members));
                    shard_members.push(members);
                }
                let router = self.make_router(&partitioner, &shard_members);
                builder.add_with_on(ROUTER_PID, router_node, Box::new(router));
                builder = builder
                    .with_link_schedule(link_schedule)
                    .with_lifecycle_schedule(lifecycle);
                RuntimeSlot::from_threaded(builder.start())
            }
        };

        RunningCluster {
            protocol: self.protocol,
            runtime: self.runtime,
            partitioner,
            shard_members,
            nodes_per_shard,
            slot,
        }
    }

    /// Builds the router over each shard's entry driver.
    fn make_router(
        &self,
        partitioner: &Partitioner,
        shard_members: &[Vec<MemberProcs>],
    ) -> ClusterRouter {
        let entries: Vec<ProcessId> = shard_members.iter().map(|members| members[0].app).collect();
        ClusterRouter::new(
            self.workload,
            partitioner.clone(),
            entries,
            self.snapshot_at,
            self.command_deadline.map(|d| (d, self.max_retries)),
        )
    }
}

/// The pid block base of shard `s`.
fn pid_base(s: u32) -> u32 {
    (s + 1) * PID_STRIDE
}

// ---------------------------------------------------------------------------
// Running handle
// ---------------------------------------------------------------------------

/// A deployed, runnable cluster: the sharded counterpart of
/// [`crate::Running`], sharing its internal `RuntimeSlot`
/// drive/settle/inspect machinery.
pub struct RunningCluster {
    protocol: Protocol,
    runtime: RuntimeKind,
    partitioner: Partitioner,
    shard_members: Vec<Vec<MemberProcs>>,
    nodes_per_shard: u32,
    slot: RuntimeSlot,
}

impl std::fmt::Debug for RunningCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningCluster")
            .field("shards", &self.shard_members.len())
            .field("protocol", &self.protocol)
            .field("runtime", &self.runtime)
            .finish()
    }
}

impl RunningCluster {
    /// Number of shards deployed.
    pub fn shards(&self) -> u32 {
        self.shard_members.len() as u32
    }

    /// The protocol every shard runs.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The runtime the cluster runs on.
    pub fn runtime_kind(&self) -> RuntimeKind {
        self.runtime
    }

    /// The key → shard map this cluster routes by.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Shard `shard`'s member handles, in member order.
    pub fn shard_procs(&self, shard: u32) -> Option<&[MemberProcs]> {
        self.shard_members.get(shard as usize).map(Vec::as_slice)
    }

    /// Drives the cluster until `horizon` and returns the reached time
    /// (same semantics as [`crate::Running::run_until`]).
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        self.slot.run_until(horizon)
    }

    /// Enables event tracing (simulator only).  Call before
    /// [`RunningCluster::run_until`].
    pub fn enable_trace(&mut self) {
        self.slot.enable_trace();
    }

    /// The recorded trace, when tracing was enabled on the simulator.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.slot.trace()
    }

    /// The runtime-wide aggregate network statistics (both runtimes).
    pub fn stats(&self) -> NetStats {
        self.slot.stats()
    }

    /// Shard `shard`'s share of the network counters.
    ///
    /// On the simulator this is derived from the per-process counters, so
    /// only the send / delivery / byte fields are attributable and the
    /// runtime-global fields stay zero.  On the threaded runtime it folds
    /// the shard's per-node stat cells (every full counter, including
    /// `busy_ns` and the send-path `gate_wait` histogram), since shard `s`
    /// owns the contiguous node range after the router's node 0.
    pub fn shard_net(&self, shard: u32) -> Option<NetStats> {
        let members = self.shard_members.get(shard as usize)?;
        if let Some(nodes) = self.slot.node_stats() {
            let base = (1 + shard * self.nodes_per_shard) as usize;
            let span = self.nodes_per_shard as usize;
            let mut stats = NetStats::default();
            for node in nodes.get(base..base + span)? {
                stats.merge(node);
            }
            return Some(stats);
        }
        let sim = self.slot.sim()?;
        let counters = sim.counters();
        let base = pid_base(shard);
        let span = match self.protocol {
            Protocol::Crash => 2 * members.len() as u32,
            Protocol::FailSignal => 4 * members.len() as u32,
        };
        let mut stats = NetStats::default();
        for pid in base..base + span {
            let c = counters.of(ProcessId(pid));
            stats.messages_sent += c.sent;
            stats.messages_delivered += c.received;
            stats.bytes_sent += c.bytes_sent;
        }
        Some(stats)
    }

    /// Every shard's [`RunningCluster::shard_net`] folded through
    /// [`NetStats::merge`] — the cluster-level aggregation path (simulator
    /// only).  Router traffic is not included, so the merged send count is
    /// a lower bound on [`RunningCluster::stats`].
    pub fn shards_net_merged(&self) -> Option<NetStats> {
        let mut merged = NetStats::default();
        for s in 0..self.shards() {
            merged.merge(&self.shard_net(s)?);
        }
        Some(merged)
    }

    /// Shuts down the threaded runtime (if any) and collects its actors
    /// for inspection.  Idempotent; a no-op on the simulator.
    pub fn settle(&mut self) {
        self.slot.settle();
    }

    /// The router actor, for load/latency/snapshot inspection.  On the
    /// threaded runtime this shuts the runtime down first.
    pub fn router(&mut self) -> &ClusterRouter {
        let any: &dyn std::any::Any = self
            .slot
            .actor_dyn(ROUTER_PID)
            .expect("cluster router exists");
        any.downcast_ref::<ClusterRouter>()
            .expect("ROUTER_PID hosts the cluster router")
    }

    /// Per-shard submitted/completed counters, indexed by shard.
    pub fn shard_loads(&mut self) -> Vec<ShardLoad> {
        self.router().shard_loads().to_vec()
    }

    /// Shard `shard`'s router-side load counters.
    pub fn shard_load(&mut self, shard: u32) -> Option<ShardLoad> {
        self.router().shard_loads().get(shard as usize).copied()
    }

    /// Completions received across every shard.
    pub fn completed(&mut self) -> u64 {
        self.router().completed()
    }

    /// The aggregated end-to-end latency summary across every shard,
    /// `None` when nothing completed.
    pub fn latency_summary(&mut self) -> Option<LatencySummary> {
        self.router().latencies().summary()
    }

    /// Shard `shard`'s end-to-end latency summary, `None` when the shard
    /// completed nothing.
    pub fn shard_latency_summary(&mut self, shard: u32) -> Option<LatencySummary> {
        self.router().shard_latencies(shard)?.summary()
    }

    /// The router's admission counters.
    pub fn load_stats(&mut self) -> LoadStats {
        self.router().load_stats()
    }

    /// The completed multi-shard snapshots, in completion order.
    pub fn snapshots(&mut self) -> Vec<ClusterSnapshot> {
        self.router().snapshots().to_vec()
    }

    /// Member `member` of shard `shard`'s machine-level state digest (see
    /// [`crate::Running::machine_digest`]).
    pub fn machine_digest(&mut self, shard: u32, member: u32) -> Option<u64> {
        let procs = *self
            .shard_members
            .get(shard as usize)?
            .get(member as usize)?;
        self.slot.machine_at(self.protocol, &procs)?.app_digest()
    }

    /// Member `member` of shard `shard`'s machine-level delivery log (see
    /// [`crate::Running::machine_log`]).
    pub fn machine_log(&mut self, shard: u32, member: u32) -> Option<Vec<(MemberId, u64)>> {
        let procs = *self
            .shard_members
            .get(shard as usize)?
            .get(member as usize)?;
        self.slot.machine_at(self.protocol, &procs)?.delivered_log()
    }

    /// The node footprint of one shard (the router occupies node 0; shard
    /// `s` starts at node `1 + s * nodes_per_shard`).
    pub fn nodes_per_shard(&self) -> u32 {
        self.nodes_per_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_msg_round_trips() {
        let msgs = vec![
            ClusterMsg::Submit {
                router_seq: 7,
                key: "k01".into(),
                value: vec![1, 2, 3],
            },
            ClusterMsg::Done { router_seq: 7 },
            ClusterMsg::SnapRead { req: 3 },
            ClusterMsg::SnapResp {
                req: 3,
                applied: 10,
                keys: 4,
                digest: 0xfeed,
            },
        ];
        for m in msgs {
            assert_eq!(ClusterMsg::from_wire(&m.to_wire()).unwrap(), m);
        }
        assert!(ClusterMsg::from_wire(&[0xff]).is_err());
    }

    #[test]
    fn hash_partitioner_is_stable_and_covers_all_shards() {
        let p = Partitioner::hash(4);
        assert_eq!(p.shards(), 4);
        let keys = router_keys(42, 256);
        let assignment = p.assignment(&keys);
        // Stable: recomputing gives the identical assignment.
        assert_eq!(p.assignment(&keys), assignment);
        // Covering: 256 uniform keys hit all 4 shards.
        let mut seen = [false; 4];
        for (_, s) in &assignment {
            assert!(*s < 4);
            seen[*s as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards own keys");
    }

    #[test]
    fn key_range_partitioner_respects_bounds() {
        let p = Partitioner::key_range(vec!["g".into(), "p".into()]);
        assert_eq!(p.shards(), 3);
        assert_eq!(p.shard_of("apple"), 0);
        assert_eq!(p.shard_of("g"), 1, "a key equal to a bound sorts above it");
        assert_eq!(p.shard_of("mango"), 1);
        assert_eq!(p.shard_of("zebra"), 2);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn key_range_rejects_unsorted_bounds() {
        let _ = Partitioner::key_range(vec!["p".into(), "g".into()]);
    }

    #[test]
    fn router_key_stream_is_deterministic() {
        assert_eq!(router_keys(9, 8), router_keys(9, 8));
        assert_ne!(router_keys(9, 8), router_keys(10, 8));
        // The stream is a prefix-stable sequence.
        assert_eq!(router_keys(9, 4), router_keys(9, 8)[..4].to_vec());
    }

    #[test]
    fn two_shard_cluster_completes_and_isolates_keys() {
        let mut cluster = Cluster::new(2, 3)
            .workload(Workload::quick(20).interval(SimDuration::from_millis(10)))
            .seed(7)
            .build();
        cluster.run_until(SimTime::from_secs(300));
        assert_eq!(cluster.completed(), 20, "every routed command completed");
        let loads = cluster.shard_loads();
        assert_eq!(loads.iter().map(|l| l.submitted).sum::<u64>(), 20);
        assert!(loads.iter().all(|l| l.in_flight() == 0));
        // Both shards made progress and their machines agree internally.
        for s in 0..2 {
            assert!(loads[s as usize].completed > 0, "shard {s} served keys");
            let d0 = cluster.machine_digest(s, 0).expect("digest");
            for m in 1..3 {
                assert_eq!(
                    cluster.machine_digest(s, m),
                    Some(d0),
                    "shard {s} member {m}"
                );
            }
        }
        // Shards hold different keys: digests differ.
        assert_ne!(
            cluster.machine_digest(0, 0),
            cluster.machine_digest(1, 0),
            "different key sets yield different state"
        );
        assert!(cluster.latency_summary().is_some());
        let stats = cluster.stats();
        assert!(stats.messages_sent > 0);
        let merged = cluster.shards_net_merged().expect("sim counters");
        assert!(merged.messages_sent > 0);
        assert!(merged.messages_sent <= stats.messages_sent);
    }

    #[test]
    fn snapshot_assembles_one_frontier_per_shard() {
        let mut cluster = Cluster::new(2, 3)
            .workload(Workload::quick(10).interval(SimDuration::from_millis(5)))
            .seed(11)
            .snapshot_at(SimTime::from_secs(2))
            .build();
        cluster.run_until(SimTime::from_secs(300));
        let snapshots = cluster.snapshots();
        assert_eq!(snapshots.len(), 1);
        let snap = &snapshots[0];
        assert_eq!(snap.shards.len(), 2);
        assert!(snap.completed_at >= snap.requested_at);
        for (s, frontier) in snap.shards.iter().enumerate() {
            assert_eq!(frontier.shard, s as u32);
            // The frontier read itself is applied, so applied >= 1.
            assert!(frontier.applied >= 1, "shard {s} frontier applied");
        }
    }
}
