//! The fault axis of the scenario matrix.
//!
//! A [`FaultSchedule`] declares two kinds of misbehaviour:
//!
//! * **process faults** — which processes misbehave and how, using the
//!   [`fs_faults`] injector vocabulary.  The scenario builder wraps the
//!   targeted actors in [`fs_faults::FaultyActor`]s at assembly time;
//! * **link faults** — timed drops, delays, loss and partitions between
//!   *members*, expressed in member terms ([`MemberLinkScope`]) and compiled
//!   to a node-level [`fs_simnet::link::LinkSchedule`] at build time.
//!
//! A [`FaultSchedule`] declares three kinds of misbehaviour — the third is
//! the recovery plane:
//!
//! * **member lifecycle events** — scheduled crash / recover / replace of a
//!   whole member ([`MemberFate`]), compiled at build time to process-level
//!   [`fs_simnet::lifecycle::LifecycleSchedule`] events over the member's
//!   *own* processes (its driver plus its interceptor and wrapper pair under
//!   the fail-signal protocol, its driver plus its middleware under the
//!   crash protocol).  `crash_member_at` takes the member down mid-run;
//!   `recover_member_at` restarts it warm (state intact, catch-up protocol
//!   kicked by the driver); `replace_member_at` installs a cold replacement
//!   that must rebuild its state by state transfer.
//!
//! Both kinds apply identically on the simulator and on the threaded
//! runtime, and to any service.  Link faults are how the paper's assumption
//! **A2** (timely links between correct processes) is violated on demand:
//! `partition_at`/`heal_at` stage a transient partition, `slow_link` holds a
//! link's delay above the suspicion timeout, `lossy_link` makes it drop
//! messages — each a one-line entry.

use fs_common::id::{MemberId, NodeId, Role};
use fs_common::time::{SimDuration, SimTime};
use fs_faults::FaultPlan;
use fs_simnet::link::{LinkFault, LinkSchedule, LinkScope};

/// Which of a member's processes a fault is injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The leader wrapper of the member's FS pair (fail-signal protocol
    /// only).
    Leader,
    /// The follower wrapper of the member's FS pair (fail-signal protocol
    /// only).
    Follower,
    /// The member's native middleware process (crash protocol only).
    Middleware,
}

/// One planned injection.
#[derive(Debug, Clone)]
pub struct FaultEntry {
    /// The afflicted member.
    pub member: MemberId,
    /// Which of its processes misbehaves.
    pub target: FaultTarget,
    /// What it does and when it starts.
    pub plan: FaultPlan,
    /// The injector's deterministic random seed.
    pub seed: u64,
}

/// Which member-to-member links a [`LinkFaultEntry`] targets, in *member*
/// terms.  At build time each member maps to its primary node (the node
/// hosting its application, interceptor and leader wrapper), which both
/// runtimes allocate as node `i` for member `i`.
///
/// Note that under the collapsed fail-signal layout member `i`'s *follower*
/// wrapper lives on member `(i+1) % n`'s primary node, so a member-scope
/// fault can also cut through an FS pair's internal link — exactly the A2
/// violation the pair's own timeouts are calibrated against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberLinkScope {
    /// The link between two members' primary nodes, both directions.
    Pair(MemberId, MemberId),
    /// Every link crossing the cut between the two member sets.
    Split {
        /// Members on one side of the cut.
        left: Vec<MemberId>,
        /// Members on the other side.
        right: Vec<MemberId>,
    },
    /// Only the `from` → `to` direction between two members' primary nodes —
    /// an *asymmetric* fault: `from`'s messages to `to` are affected while
    /// `to` can still reach `from`.  This is the shape of a half-broken NIC
    /// or an asymmetric route, and the hardest case for suspicion logic:
    /// `to` stops hearing from `from` but `from` still hears everyone.
    OneWay {
        /// The member whose outbound direction is faulted.
        from: MemberId,
        /// The member that stops receiving from `from`.
        to: MemberId,
    },
}

impl MemberLinkScope {
    /// The node-level scope this member scope compiles to, with member `i`
    /// mapping to node `node_base + i` (a standalone scenario uses base 0;
    /// a cluster shard passes the base of its node block).
    fn to_link_scope(&self, node_base: u32) -> LinkScope {
        let node = move |m: &MemberId| NodeId(node_base + m.0);
        match self {
            MemberLinkScope::Pair(a, b) => LinkScope::Pair {
                a: node(a),
                b: node(b),
            },
            MemberLinkScope::Split { left, right } => LinkScope::Split {
                left: left.iter().map(node).collect(),
                right: right.iter().map(node).collect(),
            },
            MemberLinkScope::OneWay { from, to } => LinkScope::OneWay {
                from: node(from),
                to: node(to),
            },
        }
    }
}

/// What happens to a member at one scheduled recovery-plane event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberFate {
    /// Every process of the member goes down: deliveries to them are
    /// dropped and their armed timers are lost.
    Crash,
    /// The member's processes restart warm — in-memory state intact,
    /// [`fs_simnet::actor::Actor::on_recover`] runs so they re-arm timers
    /// and (for services that implement one) start their catch-up protocol.
    Recover,
    /// The member comes back as a cold replacement with none of the old
    /// state.  Under the crash protocol this installs a fresh middleware
    /// and a fresh rejoining driver; under the fail-signal protocol it
    /// compiles to a warm [`MemberFate::Recover`] — an FS pair cannot be
    /// replaced cold, because assumption **A1** pre-provisions its keys and
    /// the peers' replay guards pin its message sequence (see
    /// [`failsignal::group`]).
    Replace,
}

/// One planned member-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberLifecycleEntry {
    /// When the event takes effect.
    pub at: SimTime,
    /// The affected member.
    pub member: MemberId,
    /// What happens to it.
    pub fate: MemberFate,
}

/// One planned link fault, in member terms.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultEntry {
    /// When the fault takes effect.
    pub at: SimTime,
    /// Which member-to-member links it targets.
    pub scope: MemberLinkScope,
    /// What happens to them.
    pub fault: LinkFault,
}

/// A set of planned injections for one scenario run.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    entries: Vec<FaultEntry>,
    link_entries: Vec<LinkFaultEntry>,
    lifecycle_entries: Vec<MemberLifecycleEntry>,
}

impl FaultSchedule {
    /// No faults: the failure-free runs of the paper's measurements.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an injection into `member`'s leader wrapper.
    #[must_use]
    pub fn leader(self, member: MemberId, plan: FaultPlan) -> Self {
        self.inject(member, FaultTarget::Leader, plan)
    }

    /// Adds an injection into `member`'s follower wrapper.
    #[must_use]
    pub fn follower(self, member: MemberId, plan: FaultPlan) -> Self {
        self.inject(member, FaultTarget::Follower, plan)
    }

    /// Adds an injection into `member`'s crash-protocol middleware process.
    #[must_use]
    pub fn middleware(self, member: MemberId, plan: FaultPlan) -> Self {
        self.inject(member, FaultTarget::Middleware, plan)
    }

    /// Adds an injection with an explicit target.
    #[must_use]
    pub fn inject(mut self, member: MemberId, target: FaultTarget, plan: FaultPlan) -> Self {
        // Unique per (member, entry index): distinct injectors must draw
        // from independent deterministic random streams.
        let seed = 0x77 ^ ((u64::from(member.0) << 32) | self.entries.len() as u64);
        self.entries.push(FaultEntry {
            member,
            target,
            plan,
            seed,
        });
        self
    }

    /// The planned injections.
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// True when `target` can actually be injected under `fail_signal`
    /// protocol deployments (wrapper targets) or crash deployments
    /// (middleware targets).
    pub fn target_applies(target: FaultTarget, fail_signal: bool) -> bool {
        match target {
            FaultTarget::Leader | FaultTarget::Follower => fail_signal,
            FaultTarget::Middleware => !fail_signal,
        }
    }

    /// True when nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.link_entries.is_empty() && self.lifecycle_entries.is_empty()
    }

    // -- the recovery plane ---------------------------------------------------

    /// Crashes every process of `member` at `at`: deliveries to them are
    /// dropped and their timers lost until a later
    /// [`FaultSchedule::recover_member_at`] or
    /// [`FaultSchedule::replace_member_at`].
    #[must_use]
    pub fn crash_member_at(self, at: SimTime, member: MemberId) -> Self {
        self.member_lifecycle(at, member, MemberFate::Crash)
    }

    /// Restarts `member` warm at `at`: its processes keep their in-memory
    /// state, re-arm their timers and run their catch-up protocol to fill
    /// whatever the downtime lost.
    #[must_use]
    pub fn recover_member_at(self, at: SimTime, member: MemberId) -> Self {
        self.member_lifecycle(at, member, MemberFate::Recover)
    }

    /// Replaces `member` cold at `at`; see [`MemberFate::Replace`] for the
    /// per-protocol semantics (a fail-signal deployment downgrades this to a
    /// warm restart).
    #[must_use]
    pub fn replace_member_at(self, at: SimTime, member: MemberId) -> Self {
        self.member_lifecycle(at, member, MemberFate::Replace)
    }

    /// Adds a member-lifecycle event with an explicit fate.
    #[must_use]
    pub fn member_lifecycle(mut self, at: SimTime, member: MemberId, fate: MemberFate) -> Self {
        self.lifecycle_entries
            .push(MemberLifecycleEntry { at, member, fate });
        self
    }

    /// The planned member-lifecycle events, in insertion order.
    pub fn lifecycle_entries(&self) -> &[MemberLifecycleEntry] {
        &self.lifecycle_entries
    }

    // -- the link-fault plane -------------------------------------------------

    /// Severs every link between `left` and `right` members at `at` — a
    /// network partition.  Pair with [`FaultSchedule::heal_at`] for a
    /// transient partition.
    #[must_use]
    pub fn partition_at(self, at: SimTime, left: &[MemberId], right: &[MemberId]) -> Self {
        self.link_fault(
            at,
            MemberLinkScope::Split {
                left: left.to_vec(),
                right: right.to_vec(),
            },
            LinkFault::Sever,
        )
    }

    /// Heals every link between `left` and `right` members at `at`,
    /// clearing severing and any degradation.
    #[must_use]
    pub fn heal_at(self, at: SimTime, left: &[MemberId], right: &[MemberId]) -> Self {
        self.link_fault(
            at,
            MemberLinkScope::Split {
                left: left.to_vec(),
                right: right.to_vec(),
            },
            LinkFault::Heal,
        )
    }

    /// Makes the link between members `a` and `b` drop each message with
    /// `probability` from `at` on.
    #[must_use]
    pub fn lossy_link(self, at: SimTime, a: MemberId, b: MemberId, probability: f64) -> Self {
        self.link_fault(
            at,
            MemberLinkScope::Pair(a, b),
            LinkFault::Loss { probability },
        )
    }

    /// Adds `extra` one-way delay (plus up to `jitter` of uniform jitter) to
    /// the link between members `a` and `b` from `at` on — the A2-violation
    /// knob: past the suspicion timeout, correct members start being
    /// suspected.
    #[must_use]
    pub fn slow_link(
        self,
        at: SimTime,
        a: MemberId,
        b: MemberId,
        extra: SimDuration,
        jitter: SimDuration,
    ) -> Self {
        self.link_fault(
            at,
            MemberLinkScope::Pair(a, b),
            LinkFault::Delay { extra, jitter },
        )
    }

    /// Severs only the `from` → `to` direction between two members at `at`:
    /// `from`'s messages stop reaching `to` while the reverse direction keeps
    /// flowing.  Heal with a [`MemberLinkScope::OneWay`] `Heal` entry via
    /// [`FaultSchedule::link_fault`].
    #[must_use]
    pub fn sever_one_way(self, at: SimTime, from: MemberId, to: MemberId) -> Self {
        self.link_fault(at, MemberLinkScope::OneWay { from, to }, LinkFault::Sever)
    }

    /// Makes only the `from` → `to` direction drop each message with
    /// `probability` from `at` on — the asymmetric sibling of
    /// [`FaultSchedule::lossy_link`].
    #[must_use]
    pub fn lossy_link_one_way(
        self,
        at: SimTime,
        from: MemberId,
        to: MemberId,
        probability: f64,
    ) -> Self {
        self.link_fault(
            at,
            MemberLinkScope::OneWay { from, to },
            LinkFault::Loss { probability },
        )
    }

    /// Adds a link fault with an explicit scope and fault value (the general
    /// form behind the named helpers; accepts the full
    /// [`LinkFault`] vocabulary, including `Throttle`).
    #[must_use]
    pub fn link_fault(mut self, at: SimTime, scope: MemberLinkScope, fault: LinkFault) -> Self {
        self.link_entries.push(LinkFaultEntry { at, scope, fault });
        self
    }

    /// The planned link faults, in insertion order.
    pub fn link_entries(&self) -> &[LinkFaultEntry] {
        &self.link_entries
    }

    /// Compiles the link entries to the node-level schedule both runtimes
    /// execute (member `i` → node `i`, the primary-node invariant of the
    /// scenario assemblers).
    pub fn compile_link_schedule(&self) -> LinkSchedule {
        self.compile_link_schedule_with_base(0)
    }

    /// Like [`FaultSchedule::compile_link_schedule`], but mapping member `i`
    /// to node `node_base + i` — used by the cluster layer, where each
    /// shard's members occupy a contiguous node block starting at its base.
    pub fn compile_link_schedule_with_base(&self, node_base: u32) -> LinkSchedule {
        let mut schedule = LinkSchedule::new();
        for entry in &self.link_entries {
            schedule = schedule.then(
                entry.at,
                entry.scope.to_link_scope(node_base),
                entry.fault.clone(),
            );
        }
        schedule
    }

    /// The plan targeting `member`'s wrapper with the given pair role, if
    /// any.
    pub fn for_wrapper(&self, member: MemberId, role: Role) -> Option<&FaultEntry> {
        let target = if role.is_leader() {
            FaultTarget::Leader
        } else {
            FaultTarget::Follower
        };
        self.entries
            .iter()
            .find(|e| e.member == member && e.target == target)
    }

    /// The plan targeting `member`'s crash-protocol middleware, if any.
    pub fn for_middleware(&self, member: MemberId) -> Option<&FaultEntry> {
        self.entries
            .iter()
            .find(|e| e.member == member && e.target == FaultTarget::Middleware)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_faults::FaultKind;

    #[test]
    fn lookups_match_targets() {
        let schedule = FaultSchedule::none()
            .follower(MemberId(1), FaultPlan::immediate(FaultKind::Crash))
            .middleware(
                MemberId(2),
                FaultPlan::after(3, FaultKind::DuplicateOutputs),
            );
        assert_eq!(schedule.entries().len(), 2);
        assert!(!schedule.is_empty());
        assert!(schedule.for_wrapper(MemberId(1), Role::Follower).is_some());
        assert!(schedule.for_wrapper(MemberId(1), Role::Leader).is_none());
        assert!(schedule.for_wrapper(MemberId(0), Role::Follower).is_none());
        assert!(schedule.for_middleware(MemberId(2)).is_some());
        assert!(schedule.for_middleware(MemberId(1)).is_none());
        assert!(FaultSchedule::none().is_empty());
    }

    #[test]
    fn lifecycle_entries_are_recorded_in_order() {
        let schedule = FaultSchedule::none()
            .crash_member_at(SimTime::from_secs(10), MemberId(1))
            .recover_member_at(SimTime::from_secs(20), MemberId(1))
            .replace_member_at(SimTime::from_secs(30), MemberId(2));
        assert!(
            !schedule.is_empty(),
            "lifecycle-only schedules are not empty"
        );
        assert!(schedule.entries().is_empty());
        assert!(schedule.link_entries().is_empty());
        let entries = schedule.lifecycle_entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(
            entries[0],
            MemberLifecycleEntry {
                at: SimTime::from_secs(10),
                member: MemberId(1),
                fate: MemberFate::Crash,
            }
        );
        assert_eq!(entries[1].fate, MemberFate::Recover);
        assert_eq!(entries[2].fate, MemberFate::Replace);
        assert_eq!(entries[2].member, MemberId(2));
    }

    #[test]
    fn link_entries_compile_to_node_schedule() {
        use fs_common::id::NodeId;
        use fs_common::time::{SimDuration, SimTime};
        use fs_simnet::link::{LinkFault, LinkScope};

        let schedule = FaultSchedule::none()
            .partition_at(
                SimTime::from_secs(5),
                &[MemberId(0)],
                &[MemberId(1), MemberId(2)],
            )
            .heal_at(
                SimTime::from_secs(8),
                &[MemberId(0)],
                &[MemberId(1), MemberId(2)],
            )
            .lossy_link(SimTime::ZERO, MemberId(1), MemberId(2), 0.25)
            .slow_link(
                SimTime::from_secs(1),
                MemberId(0),
                MemberId(1),
                SimDuration::from_millis(300),
                SimDuration::from_millis(50),
            );
        assert!(!schedule.is_empty(), "link-only schedules are not empty");
        assert_eq!(schedule.link_entries().len(), 4);
        assert!(schedule.entries().is_empty(), "no process faults planned");

        let compiled = schedule.compile_link_schedule();
        assert_eq!(compiled.len(), 4);
        let ordered = compiled.in_order();
        // Time-ordered: loss at 0, slow at 1 s, sever at 5 s, heal at 8 s.
        assert_eq!(ordered[0].fault, LinkFault::Loss { probability: 0.25 });
        assert_eq!(
            ordered[1].fault,
            LinkFault::Delay {
                extra: SimDuration::from_millis(300),
                jitter: SimDuration::from_millis(50),
            }
        );
        assert_eq!(ordered[2].fault, LinkFault::Sever);
        assert_eq!(
            ordered[2].scope,
            LinkScope::Split {
                left: vec![NodeId(0)],
                right: vec![NodeId(1), NodeId(2)],
            },
            "member i maps to node i"
        );
        assert_eq!(ordered[3].fault, LinkFault::Heal);
    }

    #[test]
    fn link_entries_compile_with_node_base() {
        use fs_common::id::NodeId;
        use fs_common::time::SimTime;
        use fs_simnet::link::LinkScope;

        let schedule =
            FaultSchedule::none().sever_one_way(SimTime::from_secs(1), MemberId(0), MemberId(2));
        let ordered = schedule.compile_link_schedule_with_base(5).in_order();
        assert_eq!(
            ordered[0].scope,
            LinkScope::OneWay {
                from: NodeId(5),
                to: NodeId(7),
            },
            "member i maps to node base + i"
        );
    }

    #[test]
    fn one_way_entries_compile_to_directed_scopes() {
        use fs_common::id::NodeId;
        use fs_common::time::SimTime;
        use fs_simnet::link::LinkScope;

        let schedule = FaultSchedule::none()
            .sever_one_way(SimTime::from_secs(2), MemberId(0), MemberId(1))
            .lossy_link_one_way(SimTime::from_secs(3), MemberId(2), MemberId(0), 0.5);
        let compiled = schedule.compile_link_schedule();
        let ordered = compiled.in_order();
        assert_eq!(
            ordered[0].scope,
            LinkScope::OneWay {
                from: NodeId(0),
                to: NodeId(1),
            }
        );
        assert_eq!(ordered[0].fault, LinkFault::Sever);
        assert_eq!(
            ordered[1].scope,
            LinkScope::OneWay {
                from: NodeId(2),
                to: NodeId(0),
            }
        );
        assert_eq!(ordered[1].fault, LinkFault::Loss { probability: 0.5 });
    }
}
