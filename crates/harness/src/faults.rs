//! The fault axis of the scenario matrix.
//!
//! A [`FaultSchedule`] declares which processes misbehave and how, using the
//! [`fs_faults`] injector vocabulary.  The scenario builder wraps the
//! targeted actors in [`fs_faults::FaultyActor`]s at assembly time, so the
//! same schedule applies identically on the simulator and on the threaded
//! runtime, and to any service.

use fs_common::id::{MemberId, Role};
use fs_faults::FaultPlan;

/// Which of a member's processes a fault is injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The leader wrapper of the member's FS pair (fail-signal protocol
    /// only).
    Leader,
    /// The follower wrapper of the member's FS pair (fail-signal protocol
    /// only).
    Follower,
    /// The member's native middleware process (crash protocol only).
    Middleware,
}

/// One planned injection.
#[derive(Debug, Clone)]
pub struct FaultEntry {
    /// The afflicted member.
    pub member: MemberId,
    /// Which of its processes misbehaves.
    pub target: FaultTarget,
    /// What it does and when it starts.
    pub plan: FaultPlan,
    /// The injector's deterministic random seed.
    pub seed: u64,
}

/// A set of planned injections for one scenario run.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    entries: Vec<FaultEntry>,
}

impl FaultSchedule {
    /// No faults: the failure-free runs of the paper's measurements.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an injection into `member`'s leader wrapper.
    #[must_use]
    pub fn leader(self, member: MemberId, plan: FaultPlan) -> Self {
        self.inject(member, FaultTarget::Leader, plan)
    }

    /// Adds an injection into `member`'s follower wrapper.
    #[must_use]
    pub fn follower(self, member: MemberId, plan: FaultPlan) -> Self {
        self.inject(member, FaultTarget::Follower, plan)
    }

    /// Adds an injection into `member`'s crash-protocol middleware process.
    #[must_use]
    pub fn middleware(self, member: MemberId, plan: FaultPlan) -> Self {
        self.inject(member, FaultTarget::Middleware, plan)
    }

    /// Adds an injection with an explicit target.
    #[must_use]
    pub fn inject(mut self, member: MemberId, target: FaultTarget, plan: FaultPlan) -> Self {
        // Unique per (member, entry index): distinct injectors must draw
        // from independent deterministic random streams.
        let seed = 0x77 ^ ((u64::from(member.0) << 32) | self.entries.len() as u64);
        self.entries.push(FaultEntry {
            member,
            target,
            plan,
            seed,
        });
        self
    }

    /// The planned injections.
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// True when `target` can actually be injected under `fail_signal`
    /// protocol deployments (wrapper targets) or crash deployments
    /// (middleware targets).
    pub fn target_applies(target: FaultTarget, fail_signal: bool) -> bool {
        match target {
            FaultTarget::Leader | FaultTarget::Follower => fail_signal,
            FaultTarget::Middleware => !fail_signal,
        }
    }

    /// True when nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The plan targeting `member`'s wrapper with the given pair role, if
    /// any.
    pub fn for_wrapper(&self, member: MemberId, role: Role) -> Option<&FaultEntry> {
        let target = if role.is_leader() {
            FaultTarget::Leader
        } else {
            FaultTarget::Follower
        };
        self.entries
            .iter()
            .find(|e| e.member == member && e.target == target)
    }

    /// The plan targeting `member`'s crash-protocol middleware, if any.
    pub fn for_middleware(&self, member: MemberId) -> Option<&FaultEntry> {
        self.entries
            .iter()
            .find(|e| e.member == member && e.target == FaultTarget::Middleware)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_faults::FaultKind;

    #[test]
    fn lookups_match_targets() {
        let schedule = FaultSchedule::none()
            .follower(MemberId(1), FaultPlan::immediate(FaultKind::Crash))
            .middleware(
                MemberId(2),
                FaultPlan::after(3, FaultKind::DuplicateOutputs),
            );
        assert_eq!(schedule.entries().len(), 2);
        assert!(!schedule.is_empty());
        assert!(schedule.for_wrapper(MemberId(1), Role::Follower).is_some());
        assert!(schedule.for_wrapper(MemberId(1), Role::Leader).is_none());
        assert!(schedule.for_wrapper(MemberId(0), Role::Follower).is_none());
        assert!(schedule.for_middleware(MemberId(2)).is_some());
        assert!(schedule.for_middleware(MemberId(1)).is_none());
        assert!(FaultSchedule::none().is_empty());
    }
}
