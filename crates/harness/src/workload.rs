//! The workload axis of the scenario matrix.
//!
//! A [`Workload`] describes *how much* traffic each member generates and at
//! what cadence, independently of which service orders it and which runtime
//! carries it — the knobs of the paper's §4 experiments (message count,
//! payload size, send interval) plus the open-loop load plane: the arrival
//! process ([`Arrival::Paced`] or [`Arrival::Poisson`]), the logical client
//! population with its bounded in-flight admission control
//! ([`Admission::Shed`] or [`Admission::Block`]), and the request batching
//! policy (close a batch at `batch_max` requests or after `batch_linger`,
//! whichever comes first).

use fs_common::id::{MemberId, ProcessId};
use fs_common::time::SimDuration;

pub use fs_simnet::load::{Admission, Arrival, LoadStats};

/// A per-member traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Payload size in bytes (the paper uses 3 bytes for "0k", up to 10 kB).
    pub payload_size: usize,
    /// How many requests each sending member offers in total (under
    /// admission control, offered requests may be shed before submission).
    pub messages: u64,
    /// Mean interval between consecutive arrivals of one member.
    pub interval: SimDuration,
    /// Delay before the first submission (lets the deployment settle).
    pub start_delay: SimDuration,
    /// The arrival process generating request arrivals at `interval`.
    pub arrival: Arrival,
    /// Seed for the arrival process RNG; 0 means "derive from the scenario
    /// seed", which the scenario builder stamps before deployment.
    pub arrival_seed: u64,
    /// How many of the group's members generate traffic (0 = all of them).
    /// `senders: 1` gives the classic single-writer load shape.
    pub senders: u32,
    /// Logical clients per sending member; arrivals are assigned round-robin.
    pub clients: u32,
    /// Bound on submitted-but-uncompleted requests per client (0 = none).
    pub max_in_flight: u32,
    /// What happens to an arrival whose client is at `max_in_flight`.
    pub admission: Admission,
    /// Requests per batch: a batch closes when it holds `batch_max` requests
    /// (1 = batching off, every request is its own ordering round).
    pub batch_max: u32,
    /// Time policy of the batch close: an open batch is flushed this long
    /// after its first request even if it never fills.
    pub batch_linger: SimDuration,
    /// When set, the member's driver also accepts routed commands from this
    /// cluster-router process (see `fs_harness::cluster`): the router sends
    /// it keyed commands and receives a completion echo per ordered
    /// delivery.  `None` (the default) keeps the driver closed to external
    /// submitters.
    pub router: Option<ProcessId>,
    /// Drift-free pacing: re-arm arrival timers against the absolute planned
    /// timeline instead of the handler's (possibly late) clock.  The scenario
    /// and cluster builders switch this on for threaded deployments, where
    /// late OS wakeups would otherwise accumulate into offered-rate drift; it
    /// must stay off on the simulator, whose handler-latency model is part of
    /// the deterministic schedule.
    pub drift_free_pacing: bool,
}

impl Default for Workload {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Workload {
    /// The paper's latency/throughput workload: 1000 small messages per
    /// member at a regular interval.
    pub fn paper_default() -> Self {
        Self {
            payload_size: 3,
            messages: 1000,
            interval: SimDuration::from_millis(40),
            start_delay: SimDuration::from_millis(10),
            arrival: Arrival::Paced,
            arrival_seed: 0,
            senders: 0,
            clients: 1,
            max_in_flight: 0,
            admission: Admission::Shed,
            batch_max: 1,
            batch_linger: SimDuration::from_millis(1),
            router: None,
            drift_free_pacing: false,
        }
    }

    /// A short workload for tests and examples: `messages` small messages
    /// per member, 25 ms apart.
    pub fn quick(messages: u64) -> Self {
        Self {
            messages,
            interval: SimDuration::from_millis(25),
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different message count.
    #[must_use]
    pub fn messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Returns a copy with a different payload size.
    #[must_use]
    pub fn payload_size(mut self, payload_size: usize) -> Self {
        self.payload_size = payload_size;
        self
    }

    /// Returns a copy with a different send interval.
    #[must_use]
    pub fn interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self
    }

    /// Returns a copy with a different start delay.
    #[must_use]
    pub fn start_delay(mut self, start_delay: SimDuration) -> Self {
        self.start_delay = start_delay;
        self
    }

    /// Returns a copy with a different arrival process.
    #[must_use]
    pub fn arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Returns a copy with Poisson arrivals (open-loop, exponential gaps
    /// with mean [`Workload::interval`]).
    #[must_use]
    pub fn poisson(self) -> Self {
        self.arrival(Arrival::Poisson)
    }

    /// Returns a copy with an explicit arrival-process seed (default 0
    /// derives it from the scenario seed).
    #[must_use]
    pub fn arrival_seed(mut self, arrival_seed: u64) -> Self {
        self.arrival_seed = arrival_seed;
        self
    }

    /// Returns a copy where only the first `senders` members generate
    /// traffic (0 = all members send).
    #[must_use]
    pub fn senders(mut self, senders: u32) -> Self {
        self.senders = senders;
        self
    }

    /// Returns a copy with a different logical client population.
    #[must_use]
    pub fn clients(mut self, clients: u32) -> Self {
        self.clients = clients;
        self
    }

    /// Returns a copy with a per-client in-flight bound (0 = unbounded).
    #[must_use]
    pub fn max_in_flight(mut self, max_in_flight: u32) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Returns a copy with a different admission (overload) policy.
    #[must_use]
    pub fn admission(mut self, admission: Admission) -> Self {
        self.admission = admission;
        self
    }

    /// Returns a copy batching up to `batch_max` requests per ordering round
    /// (1 = off).
    #[must_use]
    pub fn batch_max(mut self, batch_max: u32) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Returns a copy with a different batch linger (time-based batch close).
    #[must_use]
    pub fn batch_linger(mut self, batch_linger: SimDuration) -> Self {
        self.batch_linger = batch_linger;
        self
    }

    /// Returns a copy that accepts routed commands from the given
    /// cluster-router process (see `fs_harness::cluster`).
    #[must_use]
    pub fn router(mut self, router: ProcessId) -> Self {
        self.router = Some(router);
        self
    }

    /// Returns a copy with drift-free (plan-anchored) arrival pacing on or
    /// off.  The scenario and cluster builders stamp this per runtime; see
    /// the field docs.
    #[must_use]
    pub fn drift_free_pacing(mut self, drift_free_pacing: bool) -> Self {
        self.drift_free_pacing = drift_free_pacing;
        self
    }

    /// The workload as seen by one member: members beyond
    /// [`Workload::senders`] (when set) generate no traffic.
    #[must_use]
    pub fn for_member(mut self, member: MemberId) -> Self {
        if self.senders > 0 && member.0 >= self.senders {
            self.messages = 0;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let w = Workload::quick(5)
            .payload_size(128)
            .interval(SimDuration::from_millis(7))
            .start_delay(SimDuration::from_millis(1));
        assert_eq!(w.messages, 5);
        assert_eq!(w.payload_size, 128);
        assert_eq!(w.interval, SimDuration::from_millis(7));
        assert_eq!(w.start_delay, SimDuration::from_millis(1));
        assert_eq!(Workload::default(), Workload::paper_default());
    }

    #[test]
    fn load_plane_builders_compose() {
        let w = Workload::quick(5)
            .poisson()
            .arrival_seed(9)
            .senders(1)
            .clients(4)
            .max_in_flight(2)
            .admission(Admission::Block)
            .batch_max(8)
            .batch_linger(SimDuration::from_micros(500));
        assert_eq!(w.arrival, Arrival::Poisson);
        assert_eq!(w.arrival_seed, 9);
        assert_eq!(w.senders, 1);
        assert_eq!(w.clients, 4);
        assert_eq!(w.max_in_flight, 2);
        assert_eq!(w.admission, Admission::Block);
        assert_eq!(w.batch_max, 8);
        assert_eq!(w.batch_linger, SimDuration::from_micros(500));
        // batch_max 0 is clamped to "off", not "never close".
        assert_eq!(Workload::quick(1).batch_max(0).batch_max, 1);
    }

    #[test]
    fn for_member_silences_non_senders() {
        let w = Workload::quick(5).senders(1);
        assert_eq!(w.for_member(MemberId(0)).messages, 5);
        assert_eq!(w.for_member(MemberId(1)).messages, 0);
        assert_eq!(w.for_member(MemberId(2)).messages, 0);
        // senders = 0 means everyone sends.
        let all = Workload::quick(5);
        assert_eq!(all.for_member(MemberId(2)).messages, 5);
    }
}
