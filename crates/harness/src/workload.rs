//! The workload axis of the scenario matrix.
//!
//! A [`Workload`] describes *how much* traffic each member generates and at
//! what cadence, independently of which service orders it and which runtime
//! carries it — the knobs of the paper's §4 experiments (message count,
//! payload size, send interval) without any service-specific vocabulary.

use fs_common::time::SimDuration;

/// A per-member traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Payload size in bytes (the paper uses 3 bytes for "0k", up to 10 kB).
    pub payload_size: usize,
    /// How many messages each member submits in total.
    pub messages: u64,
    /// Interval between consecutive submissions of one member.
    pub interval: SimDuration,
    /// Delay before the first submission (lets the deployment settle).
    pub start_delay: SimDuration,
}

impl Default for Workload {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl Workload {
    /// The paper's latency/throughput workload: 1000 small messages per
    /// member at a regular interval.
    pub fn paper_default() -> Self {
        Self {
            payload_size: 3,
            messages: 1000,
            interval: SimDuration::from_millis(40),
            start_delay: SimDuration::from_millis(10),
        }
    }

    /// A short workload for tests and examples: `messages` small messages
    /// per member, 25 ms apart.
    pub fn quick(messages: u64) -> Self {
        Self {
            messages,
            interval: SimDuration::from_millis(25),
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different message count.
    #[must_use]
    pub fn messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Returns a copy with a different payload size.
    #[must_use]
    pub fn payload_size(mut self, payload_size: usize) -> Self {
        self.payload_size = payload_size;
        self
    }

    /// Returns a copy with a different send interval.
    #[must_use]
    pub fn interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self
    }

    /// Returns a copy with a different start delay.
    #[must_use]
    pub fn start_delay(mut self, start_delay: SimDuration) -> Self {
        self.start_delay = start_delay;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let w = Workload::quick(5)
            .payload_size(128)
            .interval(SimDuration::from_millis(7))
            .start_delay(SimDuration::from_millis(1));
        assert_eq!(w.messages, 5);
        assert_eq!(w.payload_size, 128);
        assert_eq!(w.interval, SimDuration::from_millis(7));
        assert_eq!(w.start_delay, SimDuration::from_millis(1));
        assert_eq!(Workload::default(), Workload::paper_default());
    }
}
