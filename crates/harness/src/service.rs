//! The service axis of the scenario matrix: pluggable service
//! specifications, plus the generic actors the crash-protocol deployments
//! are assembled from.
//!
//! A [`ServiceSpec`] bundles everything the scenario builder needs to deploy
//! one kind of deterministic group service under **either** protocol:
//!
//! * the [`FsService`] used by the fail-signal lift (the wrapper path is
//!   fully generic — see [`failsignal::group::build_fs_group`]);
//! * a factory for the service's native crash-tolerant middleware actor;
//! * a factory for the per-member workload driver, and the inspector that
//!   reads its delivery log back out.
//!
//! Two specs ship with the suite: [`NewTopService`] (the paper's GC object)
//! and [`SmrKvService`] (the sequenced replicated key-value store) — the
//! second service that demonstrates the wrapper path contains no
//! NewTOP-specific code.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use failsignal::config::RouteTable;
use failsignal::service::FsService;
use fs_common::codec::Wire;
use fs_common::id::{MemberId, ProcessId};
use fs_common::rng::DetRng;
use fs_common::time::{SimDuration, SimTime};
use fs_common::Bytes;
use fs_newtop::app::{AppProcess, TrafficConfig};
use fs_newtop::gc::{GcConfig, GcCosts, GcMachine};
use fs_newtop::message::{ControlInput, ServiceKind};
use fs_newtop::nso::{AddressBook, NsoActor};
use fs_newtop::suspector::SuspectorConfig;
use fs_simnet::actor::{Actor, Context, TimerId};
use fs_simnet::load::{AdmissionGate, ArrivalPacer, LoadStats};
use fs_simnet::trace::LatencyRecorder;
use fs_smr::machine::{DeterministicMachine, Endpoint, MachineInput};
use fs_smr::sequenced::{SequencedKv, SmrClientMsg, SmrDeliverEntry, SmrRequest, SmrUpcall};

use crate::cluster::ClusterMsg;
use crate::workload::Workload;

/// A deployable service: everything the scenario builder needs to assemble
/// it under the crash protocol or lift it to fail-signal form.
pub trait ServiceSpec: Send {
    /// A short human-readable name, used in reports.
    fn name(&self) -> &'static str;

    /// The wrapper-path view of the service (machine factory plus
    /// fail-signal conversion) — see the R1 contract on [`FsService`].
    fn fs_service(&self) -> Box<dyn FsService>;

    /// The service's native crash-tolerant middleware actor for `member`,
    /// given the middleware process of every peer and the local application
    /// process.
    fn crash_middleware(
        &self,
        member: MemberId,
        group: &[MemberId],
        peers: &BTreeMap<MemberId, ProcessId>,
        app: ProcessId,
    ) -> Box<dyn Actor>;

    /// The per-member application / workload-driver actor.
    fn driver(
        &self,
        member: MemberId,
        middleware: ProcessId,
        workload: &Workload,
    ) -> Box<dyn Actor>;

    /// The driver installed when the recovery plane *replaces* a member
    /// cold.  The default is an ordinary [`ServiceSpec::driver`];
    /// implementations whose machine has a catch-up protocol should return
    /// a driver that announces the rejoin to its middleware on start.
    fn replacement_driver(
        &self,
        member: MemberId,
        middleware: ProcessId,
        workload: &Workload,
    ) -> Box<dyn Actor> {
        self.driver(member, middleware, workload)
    }

    /// Reads the `(origin, seq)` delivery log out of a driver actor created
    /// by [`ServiceSpec::driver`] (`None` if the actor is of the wrong type).
    fn delivery_log_of(&self, driver: &dyn Actor) -> Option<Vec<(MemberId, u64)>>;

    /// Reads the ordering-latency recorder out of a driver actor (`None` if
    /// the actor is of the wrong type).
    fn latencies_of(&self, driver: &dyn Actor) -> Option<LatencyRecorder> {
        let _ = driver;
        None
    }

    /// Reads the open-loop admission counters out of a driver actor (`None`
    /// if the actor is of the wrong type).
    fn load_stats_of(&self, driver: &dyn Actor) -> Option<LoadStats> {
        let _ = driver;
        None
    }
}

impl ServiceSpec for Box<dyn ServiceSpec> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
    fn fs_service(&self) -> Box<dyn FsService> {
        self.as_ref().fs_service()
    }
    fn crash_middleware(
        &self,
        member: MemberId,
        group: &[MemberId],
        peers: &BTreeMap<MemberId, ProcessId>,
        app: ProcessId,
    ) -> Box<dyn Actor> {
        self.as_ref().crash_middleware(member, group, peers, app)
    }
    fn driver(
        &self,
        member: MemberId,
        middleware: ProcessId,
        workload: &Workload,
    ) -> Box<dyn Actor> {
        self.as_ref().driver(member, middleware, workload)
    }
    fn replacement_driver(
        &self,
        member: MemberId,
        middleware: ProcessId,
        workload: &Workload,
    ) -> Box<dyn Actor> {
        self.as_ref()
            .replacement_driver(member, middleware, workload)
    }
    fn delivery_log_of(&self, driver: &dyn Actor) -> Option<Vec<(MemberId, u64)>> {
        self.as_ref().delivery_log_of(driver)
    }
    fn latencies_of(&self, driver: &dyn Actor) -> Option<LatencyRecorder> {
        self.as_ref().latencies_of(driver)
    }
    fn load_stats_of(&self, driver: &dyn Actor) -> Option<LoadStats> {
        self.as_ref().load_stats_of(driver)
    }
}

// ---------------------------------------------------------------------------
// NewTOP
// ---------------------------------------------------------------------------

/// The NewTOP group-communication service of the paper: GC machines ordered
/// by the chosen [`ServiceKind`], with the ping-based failure suspector in
/// crash mode.
#[derive(Debug, Clone)]
pub struct NewTopService {
    service: ServiceKind,
    gc_costs: GcCosts,
    suspector: SuspectorConfig,
}

impl Default for NewTopService {
    fn default() -> Self {
        Self::new()
    }
}

impl NewTopService {
    /// The paper's configuration: symmetric total order, era-2003 protocol
    /// costs, a suspector with timeouts large enough to never fire falsely.
    pub fn new() -> Self {
        Self {
            service: ServiceKind::SymmetricTotal,
            gc_costs: GcCosts::era_2003(),
            suspector: SuspectorConfig::large_timeouts(),
        }
    }

    /// Returns a copy ordering through a different NewTOP service class.
    #[must_use]
    pub fn service_kind(mut self, service: ServiceKind) -> Self {
        self.service = service;
        self
    }

    /// Returns a copy with a different GC cost model.
    #[must_use]
    pub fn gc_costs(mut self, gc_costs: GcCosts) -> Self {
        self.gc_costs = gc_costs;
        self
    }

    /// Returns a copy with a different crash-mode suspector configuration.
    #[must_use]
    pub fn suspector(mut self, suspector: SuspectorConfig) -> Self {
        self.suspector = suspector;
        self
    }
}

/// The wrapper-path view of NewTOP: GC machines plus the fail-signal →
/// `Suspect` conversion of §3.1.
struct NewTopFs {
    gc_costs: GcCosts,
}

impl FsService for NewTopFs {
    fn name(&self) -> &'static str {
        "newtop"
    }
    fn machine(&self, member: MemberId, group: &[MemberId]) -> Box<dyn DeterministicMachine> {
        Box::new(GcMachine::new(
            GcConfig::new(member, group.to_vec()).with_costs(self.gc_costs),
        ))
    }
    fn fail_signal_input(&self, peer: MemberId) -> Option<Bytes> {
        Some(ControlInput::Suspect(peer).to_wire())
    }
}

impl ServiceSpec for NewTopService {
    fn name(&self) -> &'static str {
        "newtop"
    }

    fn fs_service(&self) -> Box<dyn FsService> {
        Box::new(NewTopFs {
            gc_costs: self.gc_costs,
        })
    }

    fn crash_middleware(
        &self,
        member: MemberId,
        group: &[MemberId],
        peers: &BTreeMap<MemberId, ProcessId>,
        app: ProcessId,
    ) -> Box<dyn Actor> {
        let gc = GcConfig::new(member, group.to_vec()).with_costs(self.gc_costs);
        let addresses = AddressBook::new(app, peers.clone());
        Box::new(NsoActor::new(gc, addresses, self.suspector))
    }

    fn driver(
        &self,
        member: MemberId,
        middleware: ProcessId,
        workload: &Workload,
    ) -> Box<dyn Actor> {
        let traffic = TrafficConfig {
            service: self.service,
            payload_size: workload.payload_size,
            messages: workload.messages,
            interval: workload.interval,
            start_delay: workload.start_delay,
            arrival: workload.arrival,
            arrival_seed: workload.arrival_seed,
            clients: workload.clients,
            max_in_flight: workload.max_in_flight,
            admission: workload.admission,
            batch_max: workload.batch_max,
            batch_linger: workload.batch_linger,
        };
        Box::new(AppProcess::new(member, middleware, traffic))
    }

    fn delivery_log_of(&self, driver: &dyn Actor) -> Option<Vec<(MemberId, u64)>> {
        let any: &dyn Any = driver;
        any.downcast_ref::<AppProcess>()
            .map(|app| app.delivery_log().to_vec())
    }

    fn latencies_of(&self, driver: &dyn Actor) -> Option<LatencyRecorder> {
        let any: &dyn Any = driver;
        any.downcast_ref::<AppProcess>()
            .map(|app| app.latencies().clone())
    }

    fn load_stats_of(&self, driver: &dyn Actor) -> Option<LoadStats> {
        let any: &dyn Any = driver;
        any.downcast_ref::<AppProcess>().map(|app| app.load_stats())
    }
}

// ---------------------------------------------------------------------------
// Sequenced replicated KV (the second service)
// ---------------------------------------------------------------------------

/// The sequenced replicated key-value service ([`SequencedKv`]) — a second,
/// structurally different deterministic service that rides the exact same
/// wrapper code path as NewTOP.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmrKvService;

impl SmrKvService {
    /// Creates the service spec.
    pub fn new() -> Self {
        Self
    }
}

struct SmrKvFs;

impl FsService for SmrKvFs {
    fn name(&self) -> &'static str {
        "smr-kv"
    }
    fn machine(&self, member: MemberId, group: &[MemberId]) -> Box<dyn DeterministicMachine> {
        Box::new(SequencedKv::new(member, group.to_vec()))
    }
}

impl ServiceSpec for SmrKvService {
    fn name(&self) -> &'static str {
        "smr-kv"
    }

    fn fs_service(&self) -> Box<dyn FsService> {
        Box::new(SmrKvFs)
    }

    fn crash_middleware(
        &self,
        member: MemberId,
        group: &[MemberId],
        peers: &BTreeMap<MemberId, ProcessId>,
        app: ProcessId,
    ) -> Box<dyn Actor> {
        let mut sources = BTreeMap::new();
        sources.insert(app, Endpoint::LocalApp);
        let mut routes = RouteTable::new();
        routes.set(Endpoint::LocalApp, vec![app]);
        let mut broadcast = Vec::new();
        for (&peer, &pid) in peers {
            sources.insert(pid, Endpoint::Peer(peer));
            routes.set(Endpoint::Peer(peer), vec![pid]);
            broadcast.push(pid);
        }
        routes.set(Endpoint::Broadcast, broadcast);
        Box::new(PlainHost::new(
            Box::new(SequencedKv::new(member, group.to_vec())),
            sources,
            routes,
        ))
    }

    fn driver(
        &self,
        member: MemberId,
        middleware: ProcessId,
        workload: &Workload,
    ) -> Box<dyn Actor> {
        Box::new(SmrDriver::new(member, middleware, *workload))
    }

    fn replacement_driver(
        &self,
        member: MemberId,
        middleware: ProcessId,
        workload: &Workload,
    ) -> Box<dyn Actor> {
        Box::new(SmrDriver::new(member, middleware, *workload).rejoining())
    }

    fn delivery_log_of(&self, driver: &dyn Actor) -> Option<Vec<(MemberId, u64)>> {
        let any: &dyn Any = driver;
        any.downcast_ref::<SmrDriver>()
            .map(|d| d.delivery_log().to_vec())
    }

    fn latencies_of(&self, driver: &dyn Actor) -> Option<LatencyRecorder> {
        let any: &dyn Any = driver;
        any.downcast_ref::<SmrDriver>()
            .map(|d| d.latencies().clone())
    }

    fn load_stats_of(&self, driver: &dyn Actor) -> Option<LoadStats> {
        let any: &dyn Any = driver;
        any.downcast_ref::<SmrDriver>().map(|d| d.load_stats())
    }
}

// ---------------------------------------------------------------------------
// Generic crash-protocol host + SMR workload driver
// ---------------------------------------------------------------------------

/// A plain, unwrapped adapter hosting a [`DeterministicMachine`] — the
/// crash-protocol counterpart of the fail-signal wrapper pair.  It maps
/// physical senders to logical endpoints on the way in and logical output
/// destinations to physical processes on the way out, charging the machine's
/// processing cost; nothing is signed or compared.
pub struct PlainHost {
    machine: Box<dyn DeterministicMachine>,
    sources: BTreeMap<ProcessId, Endpoint>,
    routes: RouteTable,
}

impl std::fmt::Debug for PlainHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlainHost")
            .field("machine", &self.machine.name())
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl PlainHost {
    /// Hosts `machine`, treating inbound messages per `sources` and routing
    /// outputs per `routes`.
    pub fn new(
        machine: Box<dyn DeterministicMachine>,
        sources: BTreeMap<ProcessId, Endpoint>,
        routes: RouteTable,
    ) -> Self {
        Self {
            machine,
            sources,
            routes,
        }
    }

    /// The hosted machine, for state inspection (the recovery plane's
    /// convergence probes read its delivered log and state digest here).
    pub fn machine(&self) -> &dyn DeterministicMachine {
        self.machine.as_ref()
    }
}

impl Actor for PlainHost {
    fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
        let Some(&endpoint) = self.sources.get(&from) else {
            return; // unknown sender: dropped
        };
        let input = MachineInput::new(endpoint, payload);
        ctx.charge_cpu(self.machine.processing_cost(&input));
        for output in self.machine.handle(&input) {
            for &to in self.routes.lookup(output.dest) {
                ctx.send(to, output.bytes.clone());
            }
        }
    }

    fn name(&self) -> String {
        format!("host({})", self.machine.name())
    }
}

/// Timer used by [`SmrDriver`] to pace its workload.
const TIMER_SEND: TimerId = TimerId(200);

/// Timer closing an open [`SmrDriver`] batch after the configured linger.
const TIMER_FLUSH: TimerId = TimerId(201);

/// The workload driver of the sequenced-KV service: offers `Put` commands
/// through the configured arrival process and admission gate, batches them
/// per the workload's batching policy, and records the `(origin, seq)`
/// delivery log and the ordering latency of its own commands.
pub struct SmrDriver {
    member: MemberId,
    middleware: ProcessId,
    workload: Workload,
    pacer: ArrivalPacer,
    gate: AdmissionGate,
    /// Arrivals generated so far (admitted or not).
    offered: u64,
    sent: u64,
    sent_at: BTreeMap<u64, SimTime>,
    /// The logical client each in-flight command was submitted for.
    client_of: BTreeMap<u64, u32>,
    /// The open batch: encoded commands with consecutive sequence numbers
    /// starting at `batch_first_seq`.
    batch: Vec<Bytes>,
    batch_first_seq: u64,
    latencies: LatencyRecorder,
    delivery_log: Vec<(MemberId, u64)>,
    last_delivery: Option<SimTime>,
    /// True for a cold-replacement incarnation: announce the rejoin on
    /// start so the fresh machine runs its catch-up protocol.
    rejoin_on_start: bool,
    /// When the last `Recover` was sent, pending its view upcall.
    recover_sent_at: Option<SimTime>,
    /// Observed view installs, as `(global slot, view id)` pairs.
    views: Vec<(u64, u64)>,
    /// Time from the last `Recover` to the view install that re-admitted
    /// this member — the driver-observed recovery time.
    rejoin_latency: Option<SimDuration>,
    /// Router bookkeeping (cluster deployments): local sequence → the
    /// router's own sequence number, echoed back on ordered delivery.
    routed_of_seq: BTreeMap<u64, u64>,
    /// Router sequences already accepted, so a deadline-triggered resubmit
    /// of a command that is still in the ordering pipeline (or already
    /// applied) is not submitted twice.
    routed_seen: BTreeSet<u64>,
    /// Local sequence → snapshot request id, for in-flight frontier reads
    /// fanned out by the cluster router.
    snap_of_seq: BTreeMap<u64, u64>,
}

impl std::fmt::Debug for SmrDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmrDriver")
            .field("member", &self.member)
            .field("sent", &self.sent)
            .field("delivered", &self.delivery_log.len())
            .finish()
    }
}

impl SmrDriver {
    /// Creates a driver for `member`, submitting through `middleware`.
    pub fn new(member: MemberId, middleware: ProcessId, workload: Workload) -> Self {
        let rng = DetRng::new(workload.arrival_seed).derive(u64::from(member.0));
        Self {
            member,
            middleware,
            pacer: ArrivalPacer::with_rng(workload.arrival, workload.interval, rng)
                .anchored(workload.drift_free_pacing),
            gate: AdmissionGate::new(workload.clients, workload.max_in_flight, workload.admission),
            workload,
            offered: 0,
            sent: 0,
            sent_at: BTreeMap::new(),
            client_of: BTreeMap::new(),
            batch: Vec::new(),
            batch_first_seq: 0,
            latencies: LatencyRecorder::new(),
            delivery_log: Vec::new(),
            last_delivery: None,
            rejoin_on_start: false,
            recover_sent_at: None,
            views: Vec::new(),
            rejoin_latency: None,
            routed_of_seq: BTreeMap::new(),
            routed_seen: BTreeSet::new(),
            snap_of_seq: BTreeMap::new(),
        }
    }

    /// Marks this driver as a cold replacement: on start it sends
    /// [`SmrClientMsg::Recover`] so the fresh machine fetches the state it
    /// never had and announces its rejoin to the sequencer.
    #[must_use]
    pub fn rejoining(mut self) -> Self {
        self.rejoin_on_start = true;
        self
    }

    /// The `(origin, seq)` pairs delivered so far, in delivery order.
    pub fn delivery_log(&self) -> &[(MemberId, u64)] {
        &self.delivery_log
    }

    /// Commands submitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Ordering latencies of this member's own commands.
    pub fn latencies(&self) -> &LatencyRecorder {
        &self.latencies
    }

    /// Time of the last delivery received, if any.
    pub fn last_delivery(&self) -> Option<SimTime> {
        self.last_delivery
    }

    /// The admission counters of this driver's gate.
    pub fn load_stats(&self) -> LoadStats {
        self.gate.stats()
    }

    /// The view installs this driver observed, as `(global slot, view id)`
    /// pairs in delivery order.
    pub fn views(&self) -> &[(u64, u64)] {
        &self.views
    }

    /// Time from this driver's last `Recover` to the view install that
    /// re-admitted its member — `None` until a rejoin completed.
    pub fn rejoin_latency(&self) -> Option<SimDuration> {
        self.rejoin_latency
    }

    /// One tick of the arrival process: offer a command to the admission
    /// gate, buffer it if admitted, and re-arm the arrival timer.
    fn next_arrival(&mut self, ctx: &mut dyn Context) {
        if self.offered >= self.workload.messages {
            return;
        }
        self.offered += 1;
        if let Some(client) = self.gate.arrive() {
            self.enqueue(ctx, client);
        }
        if self.offered < self.workload.messages {
            ctx.set_timer(self.pacer.next_gap_from(ctx.now()), TIMER_SEND);
        }
    }

    /// Buffers one admitted command into the open batch, flushing when the
    /// batch is full (a fresh batch arms the linger timer instead).
    fn enqueue(&mut self, ctx: &mut dyn Context, client: u32) {
        let seq = self.sent;
        self.sent += 1;
        let mut value = vec![0xa5u8; self.workload.payload_size];
        value
            .iter_mut()
            .zip(seq.to_le_bytes())
            .for_each(|(v, b)| *v = b);
        let command = fs_smr::command::KvCommand::Put {
            key: format!("m{}-{}", self.member.0, seq),
            value,
        };
        self.sent_at.insert(seq, ctx.now());
        self.client_of.insert(seq, client);
        self.push_command(ctx, seq, command.to_wire());
    }

    /// Buffers one already-sequenced command into the open batch, flushing
    /// when the batch is full (a fresh batch arms the linger timer instead).
    /// Shared by locally generated load and router-submitted commands.
    fn push_command(&mut self, ctx: &mut dyn Context, seq: u64, command: Bytes) {
        if self.batch.is_empty() {
            self.batch_first_seq = seq;
        }
        self.batch.push(command);
        if self.batch.len() as u32 >= self.workload.batch_max {
            ctx.cancel_timer(TIMER_FLUSH);
            self.flush(ctx);
        } else if self.batch.len() == 1 {
            ctx.set_timer(self.workload.batch_linger, TIMER_FLUSH);
        }
    }

    /// Handles one message from the cluster router: a keyed command to
    /// submit on this shard, or a frontier read for a multi-shard snapshot.
    /// Malformed frames are dropped, like any other unparseable input.
    fn on_router_msg(&mut self, ctx: &mut dyn Context, payload: &[u8]) {
        match ClusterMsg::from_wire(payload) {
            Ok(ClusterMsg::Submit {
                router_seq,
                key,
                value,
            }) => {
                if !self.routed_seen.insert(router_seq) {
                    // A router retry of a command this incarnation already
                    // accepted: the original is still in the pipeline (its
                    // completion echo will go out when it orders), so a
                    // second submission would only double-apply.
                    return;
                }
                let seq = self.sent;
                self.sent += 1;
                self.routed_of_seq.insert(seq, router_seq);
                let command = fs_smr::command::KvCommand::Put { key, value };
                self.push_command(ctx, seq, command.to_wire());
            }
            Ok(ClusterMsg::SnapRead { req }) => {
                let seq = self.sent;
                self.sent += 1;
                self.snap_of_seq.insert(seq, req);
                self.push_command(ctx, seq, fs_smr::command::KvCommand::Frontier.to_wire());
            }
            _ => {}
        }
    }

    /// Submits the open batch as one client frame (one ordering round).
    fn flush(&mut self, ctx: &mut dyn Context) {
        if self.batch.is_empty() {
            return;
        }
        let frame = if self.batch.len() == 1 {
            SmrClientMsg::Request(SmrRequest {
                seq: self.batch_first_seq,
                command: self.batch.pop().expect("one buffered command"),
            })
        } else {
            SmrClientMsg::Batch {
                first_seq: self.batch_first_seq,
                commands: std::mem::take(&mut self.batch),
            }
        };
        ctx.send(self.middleware, frame.to_wire());
    }

    /// Accounts one applied command from a delivery upcall.
    fn deliver_entry(&mut self, ctx: &mut dyn Context, now: SimTime, entry: &SmrDeliverEntry) {
        self.delivery_log.push((entry.origin, entry.seq));
        if entry.origin != self.member {
            return;
        }
        if let Some(router) = self.workload.router {
            if let Some(router_seq) = self.routed_of_seq.remove(&entry.seq) {
                ctx.send(router, ClusterMsg::Done { router_seq }.to_wire());
                return;
            }
            if let Some(req) = self.snap_of_seq.remove(&entry.seq) {
                if let Ok(fs_smr::command::KvResponse::Frontier {
                    applied,
                    keys,
                    digest,
                }) = fs_smr::command::KvResponse::from_wire(&entry.response)
                {
                    ctx.send(
                        router,
                        ClusterMsg::SnapResp {
                            req,
                            applied,
                            keys,
                            digest,
                        }
                        .to_wire(),
                    );
                }
                return;
            }
        }
        if let Some(sent_at) = self.sent_at.remove(&entry.seq) {
            self.latencies.record_span(sent_at, now);
            if let Some(client) = self.client_of.remove(&entry.seq) {
                if self.gate.complete(client) {
                    // The completion hands its slot to a blocked arrival.
                    self.enqueue(ctx, client);
                }
            }
        }
    }
}

impl Actor for SmrDriver {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if self.rejoin_on_start {
            self.recover_sent_at = Some(ctx.now());
            ctx.send(self.middleware, SmrClientMsg::Recover.to_wire());
        }
        if self.workload.messages > 0 {
            ctx.set_timer(self.workload.start_delay, TIMER_SEND);
        }
    }

    fn on_recover(&mut self, ctx: &mut dyn Context) {
        // A warm restart: state survives but timers did not, and any
        // deliveries that raced the downtime are gone for good — state
        // transfer rebuilds the machine's log, not the upcall stream.
        // Abandon the in-flight window so the admission gate's slots do not
        // leak (late deliveries of abandoned commands are simply not
        // latency-sampled), re-arm pacing, and kick the machine's catch-up
        // protocol.
        if !self.batch.is_empty() {
            ctx.set_timer(self.workload.batch_linger, TIMER_FLUSH);
        }
        self.sent_at.clear();
        let stranded: Vec<u32> = std::mem::take(&mut self.client_of).into_values().collect();
        for client in stranded {
            if self.gate.complete(client) {
                self.enqueue(ctx, client);
            }
        }
        if self.offered < self.workload.messages {
            // The downtime is not made up for: re-anchor the pacing plan at
            // the recovery instant instead of bursting the missed arrivals.
            self.pacer.resync();
            ctx.set_timer(self.pacer.next_gap_from(ctx.now()), TIMER_SEND);
        }
        self.recover_sent_at = Some(ctx.now());
        ctx.send(self.middleware, SmrClientMsg::Recover.to_wire());
    }

    fn on_timer(&mut self, ctx: &mut dyn Context, timer: TimerId) {
        if timer == TIMER_SEND {
            self.next_arrival(ctx);
        } else if timer == TIMER_FLUSH {
            self.flush(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
        if self.workload.router == Some(from) {
            self.on_router_msg(ctx, &payload);
            return;
        }
        if from != self.middleware {
            return;
        }
        let Ok(upcall) = SmrUpcall::from_wire(&payload) else {
            return;
        };
        let now = ctx.now();
        self.last_delivery = Some(now);
        match upcall {
            SmrUpcall::Deliver(delivery) => {
                let entry = SmrDeliverEntry {
                    origin: delivery.origin,
                    seq: delivery.seq,
                    response: delivery.response,
                };
                self.deliver_entry(ctx, now, &entry);
            }
            SmrUpcall::Batch(batch) => {
                for entry in &batch.entries {
                    self.deliver_entry(ctx, now, entry);
                }
            }
            SmrUpcall::View(install) => {
                self.views.push((install.global, install.view.id));
                // On the rejoining member, its own view install doubles as
                // the catch-up-complete signal (the transition applies only
                // after the whole history before it).
                if install.view.contains(self.member) {
                    if let Some(sent) = self.recover_sent_at.take() {
                        self.rejoin_latency = Some(now.duration_since(sent));
                    }
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("smr-driver-{}", self.member.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_simnet::actor::TestContext;

    #[test]
    fn newtop_spec_exposes_gc_machines_and_suspect_conversion() {
        let spec = NewTopService::new().suspector(SuspectorConfig::disabled());
        let fs = spec.fs_service();
        assert_eq!(fs.name(), "newtop");
        let group = [MemberId(0), MemberId(1)];
        assert_eq!(fs.machine(MemberId(0), &group).name(), "newtop-gc-0");
        let injected = fs.fail_signal_input(MemberId(1)).expect("suspect input");
        assert_eq!(
            ControlInput::from_wire(&injected).unwrap(),
            ControlInput::Suspect(MemberId(1))
        );
    }

    #[test]
    fn smr_spec_wraps_sequenced_kv() {
        let spec = SmrKvService::new();
        let fs = spec.fs_service();
        assert_eq!(fs.name(), "smr-kv");
        assert!(fs.fail_signal_input(MemberId(1)).is_none());
        let group = [MemberId(0), MemberId(1)];
        assert_eq!(fs.machine(MemberId(1), &group).name(), "smr-kv-1");
    }

    #[test]
    fn delivery_log_inspectors_reject_foreign_actors() {
        let newtop = NewTopService::new();
        let smr = SmrKvService::new();
        let driver = smr.driver(MemberId(0), ProcessId(1), &Workload::quick(1));
        assert!(newtop.delivery_log_of(driver.as_ref()).is_none());
        assert_eq!(smr.delivery_log_of(driver.as_ref()), Some(vec![]));
    }

    #[test]
    fn smr_driver_paces_and_logs() {
        let mut driver = SmrDriver::new(MemberId(1), ProcessId(9), Workload::quick(2));
        let mut ctx = TestContext::new(ProcessId(4));
        driver.on_start(&mut ctx);
        driver.on_timer(&mut ctx, TIMER_SEND);
        driver.on_timer(&mut ctx, TIMER_SEND);
        driver.on_timer(&mut ctx, TIMER_SEND); // exhausted: no extra send
        assert_eq!(driver.sent(), 2);
        assert_eq!(ctx.sent_to(ProcessId(9)).len(), 2);

        // A delivery of its own first command records a latency sample.
        let SmrClientMsg::Request(request) = SmrClientMsg::from_wire(&ctx.sent[0].payload).unwrap()
        else {
            panic!("unbatched workloads submit single requests");
        };
        let upcall = SmrUpcall::Deliver(fs_smr::sequenced::SmrDeliver {
            global: 0,
            origin: MemberId(1),
            seq: request.seq,
            response: Bytes::from(&b"ok"[..]),
        });
        driver.on_message(&mut ctx, ProcessId(9), upcall.to_wire());
        assert_eq!(driver.delivery_log(), &[(MemberId(1), 0)]);
        assert_eq!(driver.latencies().len(), 1);
        assert!(driver.last_delivery().is_some());
        // Strangers and malformed payloads are ignored.
        driver.on_message(&mut ctx, ProcessId(5), Bytes::from(&b"junk"[..]));
        driver.on_message(&mut ctx, ProcessId(9), Bytes::from(&b"junk"[..]));
        assert_eq!(driver.delivery_log().len(), 1);
        assert_eq!(driver.name(), "smr-driver-1");
    }

    #[test]
    fn plain_host_maps_sources_and_routes() {
        let group = vec![MemberId(0), MemberId(1)];
        let spec = SmrKvService::new();
        let peers: BTreeMap<MemberId, ProcessId> =
            [(MemberId(1), ProcessId(3))].into_iter().collect();
        // Member 0 is the sequencer: a local command is ordered, multicast
        // and applied immediately.
        let mut host = spec.crash_middleware(MemberId(0), &group, &peers, ProcessId(2));
        let mut ctx = TestContext::new(ProcessId(0));
        let request = SmrClientMsg::Request(SmrRequest {
            seq: 0,
            command: fs_smr::command::KvCommand::Put {
                key: "k".into(),
                value: vec![1],
            }
            .to_wire(),
        });
        host.on_message(&mut ctx, ProcessId(2), request.to_wire());
        assert_eq!(ctx.sent_to(ProcessId(3)).len(), 1, "Ordered multicast");
        assert_eq!(ctx.sent_to(ProcessId(2)).len(), 1, "local delivery upcall");
        // Unknown senders are dropped.
        let before = ctx.sent.len();
        host.on_message(&mut ctx, ProcessId(77), Bytes::from(&b"x"[..]));
        assert_eq!(ctx.sent.len(), before);
    }
}
