//! # fs-harness
//!
//! The runtime-agnostic **scenario harness** of the fail-signal suite: one
//! typed builder for the whole matrix *service × runtime × workload × fault
//! schedule × protocol*.
//!
//! The paper's claim is that the fail-signal transformation is a
//! *structured, reusable* lift from crash tolerance to authenticated
//! Byzantine tolerance.  This crate makes the claim operational: the axes of
//! a deployment are orthogonal, pluggable values rather than per-system
//! builder functions.
//!
//! | axis | type | shipped values |
//! |---|---|---|
//! | service | [`ServiceSpec`] | [`NewTopService`] (the paper's GC), [`SmrKvService`] (sequenced replicated KV) |
//! | runtime | [`RuntimeKind`] | discrete-event simulator, real threads |
//! | workload | [`Workload`] | messages × payload × cadence |
//! | faults | [`FaultSchedule`] | any [`fs_faults::FaultKind`] against any wrapper or middleware, timed link faults (partition/heal, loss, delay, throttle) between members, and scheduled member crash / recover / replace events (the recovery plane) |
//! | protocol | [`Protocol`] | crash-tolerant native, fail-signal lifted |
//! | topology | [`fs_simnet::link::Topology`] via [`Scenario::topology`] / [`Scenario::link_model`] | the paper's 100 Mb/s LAN by default |
//!
//! ```
//! use fs_common::time::SimTime;
//! use fs_harness::{Protocol, RuntimeKind, Scenario, SmrKvService, Workload};
//!
//! // The second service (a replicated KV), lifted to Byzantine tolerance by
//! // the very same wrapper path NewTOP uses — no service-specific code.
//! let mut run = Scenario::new(SmrKvService::new())
//!     .members(3)
//!     .runtime(RuntimeKind::Sim)
//!     .protocol(Protocol::FailSignal)
//!     .workload(Workload::quick(3))
//!     .build();
//! run.run_until(SimTime::from_secs(120));
//! assert_eq!(run.delivery_log(0).len(), 9);
//! assert_eq!(run.delivery_log(1), run.delivery_log(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod faults;
pub mod scenario;
pub mod service;
pub mod workload;

pub use cluster::{
    Cluster, ClusterMsg, ClusterRouter, ClusterSnapshot, Partitioner, RunningCluster,
    ShardFrontier, ShardLoad,
};
pub use failsignal::group::PairLayout;
pub use faults::{
    FaultEntry, FaultSchedule, FaultTarget, LinkFaultEntry, MemberFate, MemberLifecycleEntry,
    MemberLinkScope,
};
pub use scenario::{MemberProcs, Protocol, Running, RuntimeKind, Scenario};
pub use service::{NewTopService, PlainHost, ServiceSpec, SmrDriver, SmrKvService};
pub use workload::{Admission, Arrival, LoadStats, Workload};
