//! The [`Scenario`] builder and the uniform [`Running`] handle.
//!
//! A scenario is a point in the matrix *service × runtime × workload ×
//! fault schedule × protocol*: the same typed builder deploys crash-tolerant
//! NewTOP on the simulator, fail-signal-wrapped SMR-KV on real threads, or
//! any other combination, and every run is driven and inspected through the
//! same [`Running`] handle.
//!
//! ```
//! use fs_harness::{NewTopService, Protocol, RuntimeKind, Scenario, Workload};
//! use fs_common::time::SimTime;
//!
//! let mut run = Scenario::new(NewTopService::new())
//!     .members(3)
//!     .runtime(RuntimeKind::Sim)
//!     .protocol(Protocol::FailSignal)
//!     .workload(Workload::quick(2))
//!     .build();
//! run.run_until(SimTime::from_secs(120));
//! let reference = run.delivery_log(0);
//! assert_eq!(reference.len(), 6, "3 members x 2 multicasts");
//! assert_eq!(run.delivery_log(1), reference);
//! ```

use std::collections::{BTreeMap, HashMap};

use failsignal::group::{build_fs_group, FsGroupParams, GroupHost, PairLayout};
use failsignal::interceptor::FsInterceptor;
use failsignal::wrapper::FsoActor;
use fs_common::config::TimingAssumptions;
use fs_common::id::{MemberId, ProcessId};
use fs_common::time::{SimDuration, SimTime};
use fs_crypto::cost::CryptoCostModel;
use fs_faults::FaultyActor;
use fs_simnet::actor::Actor;
use fs_simnet::lifecycle::{LifecycleSchedule, ProcessFate};
use fs_simnet::link::{LinkModel, Topology};
use fs_simnet::node::NodeConfig;
use fs_simnet::sched::SchedulerKind;
use fs_simnet::sim::Simulation;
use fs_simnet::threaded::{ThreadedBuilder, ThreadedConfig, ThreadedRuntime};
use fs_simnet::trace::{NetStats, TraceLog};

use crate::faults::{FaultSchedule, MemberFate};
use crate::service::{PlainHost, ServiceSpec};
use crate::workload::Workload;

/// The fault-tolerance protocol axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The service's native, crash-tolerant deployment.
    Crash,
    /// The service lifted to authenticated Byzantine tolerance by the
    /// fail-signal transformation.
    FailSignal,
}

/// The runtime axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// The deterministic discrete-event simulator (the paper's measurement
    /// vehicle).
    Sim,
    /// The real multi-threaded runtime: one thread per node, crossbeam
    /// channels for links, wall-clock timers.
    Threaded,
}

/// The process identities of one deployed member, uniform across protocols
/// and runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberProcs {
    /// The member index.
    pub member: MemberId,
    /// The application / workload-driver process.
    pub app: ProcessId,
    /// The middleware entry point the application talks to (the native
    /// middleware under [`Protocol::Crash`], the interceptor under
    /// [`Protocol::FailSignal`]).
    pub middleware: ProcessId,
    /// The leader wrapper (equals `middleware` under [`Protocol::Crash`]).
    pub leader: ProcessId,
    /// The follower wrapper (equals `middleware` under [`Protocol::Crash`]).
    pub follower: ProcessId,
}

/// A typed scenario builder.  Every axis has a paper-faithful default, so a
/// scenario is fully described by the calls that differ from the paper's
/// set-up.
pub struct Scenario {
    service: Box<dyn ServiceSpec>,
    members: u32,
    runtime: RuntimeKind,
    protocol: Protocol,
    workload: Workload,
    faults: FaultSchedule,
    layout: PairLayout,
    timing: TimingAssumptions,
    crypto_costs: CryptoCostModel,
    node: NodeConfig,
    seed: u64,
    scheduler: SchedulerKind,
    topology: Option<Topology>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("service", &self.service.name())
            .field("members", &self.members)
            .field("runtime", &self.runtime)
            .field("protocol", &self.protocol)
            .finish()
    }
}

impl Scenario {
    /// Starts a scenario around `service` with the paper's defaults: three
    /// members on the simulator, fail-signal protocol, collapsed layout,
    /// era-2003 node and crypto cost models, generous timing assumptions,
    /// no faults, seed 2003.
    pub fn new(service: impl ServiceSpec + 'static) -> Self {
        Self {
            service: Box::new(service),
            members: 3,
            runtime: RuntimeKind::Sim,
            protocol: Protocol::FailSignal,
            workload: Workload::paper_default(),
            faults: FaultSchedule::none(),
            layout: PairLayout::Collapsed,
            timing: TimingAssumptions {
                delta: SimDuration::from_secs(120),
                kappa: 4.0,
                sigma: 4.0,
            },
            crypto_costs: CryptoCostModel::era_2003(),
            node: NodeConfig::era_2003(),
            seed: 2003,
            scheduler: SchedulerKind::default(),
            topology: None,
        }
    }

    /// Sets the group size.
    #[must_use]
    pub fn members(mut self, members: u32) -> Self {
        self.members = members;
        self
    }

    /// Selects the runtime.
    #[must_use]
    pub fn runtime(mut self, runtime: RuntimeKind) -> Self {
        self.runtime = runtime;
        self
    }

    /// Selects the fault-tolerance protocol.
    #[must_use]
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the per-member workload.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the fault schedule.
    #[must_use]
    pub fn faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the follower placement (fail-signal protocol only).
    #[must_use]
    pub fn layout(mut self, layout: PairLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the pairs' timing assumptions (δ, κ, σ).
    #[must_use]
    pub fn timing(mut self, timing: TimingAssumptions) -> Self {
        self.timing = timing;
        self
    }

    /// Sets the cryptography cost model.
    #[must_use]
    pub fn crypto_costs(mut self, crypto_costs: CryptoCostModel) -> Self {
        self.crypto_costs = crypto_costs;
        self
    }

    /// Sets the per-node configuration.
    #[must_use]
    pub fn node_config(mut self, node: NodeConfig) -> Self {
        self.node = node;
        self
    }

    /// Sets the deterministic seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the simulator's future-event-set scheduler (ignored by the
    /// threaded runtime).
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the deployment topology explicitly.  Member `i`'s primary node
    /// is node `i` of the topology on either runtime.  The default is the
    /// paper's lightly loaded 100 Mb/s LAN.
    ///
    /// On the simulator the full topology applies (link models and fault
    /// plane); the threaded runtime applies the fault plane only — real
    /// channels already have transport costs.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Shorthand for [`Scenario::topology`] with a uniform link model
    /// between every pair of nodes.
    #[must_use]
    pub fn link_model(self, link: LinkModel) -> Self {
        self.topology(Topology::new(link))
    }

    /// Assembles the scenario on `host` and returns the member handles.
    fn assemble<H: GroupHost>(&self, host: &mut H) -> Vec<MemberProcs> {
        self.assemble_at(host, 0)
    }

    /// The scenario's fault schedule (used by the cluster layer to compile
    /// per-shard link faults against the shard's node base).
    pub(crate) fn fault_schedule(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Assembles the scenario on `host` with every process identifier
    /// offset by `pid_base`, so several scenarios (cluster shards) can
    /// share one runtime without identifier collisions.  Nodes are created
    /// in the same order as the standalone assembly, so within the shard
    /// member `i`'s primary node is the `i`-th node this call creates.
    pub(crate) fn assemble_at<H: GroupHost>(
        &self,
        host: &mut H,
        pid_base: u32,
    ) -> Vec<MemberProcs> {
        match self.protocol {
            Protocol::FailSignal => {
                let params = FsGroupParams {
                    members: self.members,
                    layout: self.layout,
                    node: self.node,
                    timing: self.timing,
                    crypto_costs: self.crypto_costs,
                    seed: self.seed,
                    pid_base,
                };
                let fs_service = self.service.fs_service();
                let service = &*self.service;
                let workload = self.workload;
                let faults = &self.faults;
                build_fs_group(
                    host,
                    &params,
                    fs_service.as_ref(),
                    |member, interceptor| {
                        service.driver(member, interceptor, &workload.for_member(member))
                    },
                    |member, role, actor| match faults.for_wrapper(member, role) {
                        Some(entry) => {
                            Box::new(FaultyActor::new(actor, entry.plan.clone(), entry.seed))
                        }
                        None => actor,
                    },
                )
                .into_iter()
                .map(|h| MemberProcs {
                    member: h.member,
                    app: h.app,
                    middleware: h.interceptor,
                    leader: h.leader,
                    follower: h.follower,
                })
                .collect()
            }
            Protocol::Crash => {
                let n = self.members;
                assert!(n >= 1, "a group needs at least one member");
                let group: Vec<MemberId> = (0..n).map(MemberId).collect();
                let app_pid = |i: u32| ProcessId(pid_base + 2 * i);
                let mw_pid = |i: u32| ProcessId(pid_base + 2 * i + 1);
                let mut members = Vec::new();
                for i in 0..n {
                    let node = host.add_host_node(&self.node);
                    let peers: BTreeMap<MemberId, ProcessId> = (0..n)
                        .filter(|j| *j != i)
                        .map(|j| (MemberId(j), mw_pid(j)))
                        .collect();
                    let mut middleware =
                        self.service
                            .crash_middleware(MemberId(i), &group, &peers, app_pid(i));
                    if let Some(entry) = self.faults.for_middleware(MemberId(i)) {
                        middleware =
                            Box::new(FaultyActor::new(middleware, entry.plan.clone(), entry.seed));
                    }
                    host.place(mw_pid(i), node, middleware);
                    host.place(
                        app_pid(i),
                        node,
                        self.service.driver(
                            MemberId(i),
                            mw_pid(i),
                            &self.workload.for_member(MemberId(i)),
                        ),
                    );
                    members.push(MemberProcs {
                        member: MemberId(i),
                        app: app_pid(i),
                        middleware: mw_pid(i),
                        leader: mw_pid(i),
                        follower: mw_pid(i),
                    });
                }
                members
            }
        }
    }

    /// The member's own processes under the current protocol, in
    /// take-down order (driver first, infrastructure last).  Under the
    /// collapsed fail-signal layout a member's *node* also hosts a
    /// neighbour's follower wrapper, so lifecycle events deliberately target
    /// processes, never whole nodes — crashing the neighbour's follower
    /// would fail-signal a perfectly healthy member.
    fn member_pids(procs: &MemberProcs) -> Vec<ProcessId> {
        let mut pids = vec![procs.app, procs.middleware, procs.leader, procs.follower];
        pids.dedup();
        pids
    }

    /// Compiles the member-lifecycle entries of the fault schedule to the
    /// process-level schedule both runtimes execute.
    ///
    /// * `Crash` takes down every process of the member.
    /// * `Recover` brings them back warm, infrastructure first so the
    ///   driver's rejoin message finds its middleware up.
    /// * `Replace` under [`Protocol::Crash`] installs a fresh middleware and
    ///   a fresh rejoining driver (no state: the service's catch-up protocol
    ///   must rebuild it); under [`Protocol::FailSignal`] it compiles to a
    ///   warm `Recover` — an FS pair cannot be replaced cold, because
    ///   assumption A1 pre-provisions its keys and the peers' replay guards
    ///   pin its message sequence (see [`failsignal::group`]).
    pub(crate) fn compile_lifecycle(&self, members: &[MemberProcs]) -> LifecycleSchedule {
        let mut schedule = LifecycleSchedule::new();
        for entry in self.faults.lifecycle_entries() {
            let procs = members
                .iter()
                .find(|p| p.member == entry.member)
                .unwrap_or_else(|| {
                    panic!(
                        "lifecycle schedule targets member {}, which the group does not deploy",
                        entry.member
                    )
                });
            match entry.fate {
                MemberFate::Crash => {
                    for pid in Self::member_pids(procs) {
                        schedule.push(entry.at, pid, ProcessFate::Crash);
                    }
                }
                MemberFate::Recover => {
                    for pid in Self::member_pids(procs).into_iter().rev() {
                        schedule.push(entry.at, pid, ProcessFate::Recover);
                    }
                }
                MemberFate::Replace => match self.protocol {
                    Protocol::FailSignal => {
                        for pid in Self::member_pids(procs).into_iter().rev() {
                            schedule.push(entry.at, pid, ProcessFate::Recover);
                        }
                    }
                    Protocol::Crash => {
                        let group: Vec<MemberId> = members.iter().map(|p| p.member).collect();
                        let peers: BTreeMap<MemberId, ProcessId> = members
                            .iter()
                            .filter(|p| p.member != entry.member)
                            .map(|p| (p.member, p.middleware))
                            .collect();
                        let middleware =
                            self.service
                                .crash_middleware(entry.member, &group, &peers, procs.app);
                        schedule.push(entry.at, procs.middleware, ProcessFate::Replace(middleware));
                        // The replacement incarnation observes rather than
                        // drives load: its predecessor's per-member sequence
                        // numbers are pinned by the sequencer's at-most-once
                        // guard, so a fresh stream starting at zero would be
                        // silently deduplicated.
                        let mut workload = self.workload.for_member(entry.member);
                        workload.messages = 0;
                        let driver = self.service.replacement_driver(
                            entry.member,
                            procs.middleware,
                            &workload,
                        );
                        schedule.push(entry.at, procs.app, ProcessFate::Replace(driver));
                    }
                },
            }
        }
        schedule
    }

    /// Builds and starts the scenario, returning the uniform running handle.
    ///
    /// # Panics
    ///
    /// Panics when the fault schedule targets processes the selected
    /// protocol does not deploy (wrapper targets under [`Protocol::Crash`],
    /// middleware targets under [`Protocol::FailSignal`]) — a mis-targeted
    /// campaign would otherwise run fault-free and pass vacuously — or when
    /// a member-lifecycle entry names a member outside the group.
    pub fn build(mut self) -> Running {
        // Stamp the arrival-process seed from the scenario seed so open-loop
        // runs are reproducible per seed without extra configuration (each
        // member then derives its own independent stream from this value).
        if self.workload.arrival_seed == 0 {
            self.workload.arrival_seed = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        }
        // Threaded deployments pace against the absolute arrival plan so OS
        // wakeup lateness cannot accumulate into offered-rate drift; the
        // simulator keeps relative pacing (its handler latency is modeled).
        if self.runtime == RuntimeKind::Threaded {
            self.workload.drift_free_pacing = true;
        }
        for entry in self.faults.entries() {
            assert!(
                FaultSchedule::target_applies(entry.target, self.protocol == Protocol::FailSignal),
                "fault schedule targets {:?} of member {}, which the {:?} protocol does not deploy",
                entry.target,
                entry.member,
                self.protocol,
            );
        }
        let topology = self
            .topology
            .clone()
            .unwrap_or_else(|| Topology::new(LinkModel::lan_100mbps()));
        let link_schedule = self.faults.compile_link_schedule();
        match self.runtime {
            RuntimeKind::Sim => {
                let mut sim = Simulation::with_scheduler(self.seed, topology, self.scheduler);
                let members = self.assemble(&mut sim);
                sim.apply_link_schedule(&link_schedule);
                sim.apply_lifecycle_schedule(self.compile_lifecycle(&members));
                Running {
                    service: self.service,
                    protocol: self.protocol,
                    runtime: RuntimeKind::Sim,
                    members,
                    slot: RuntimeSlot::from_sim(sim),
                }
            }
            RuntimeKind::Threaded => {
                let mut builder = ThreadedBuilder::new(ThreadedConfig {
                    cpu_charge_scale: 0.0,
                    seed: self.seed,
                })
                .with_topology(topology)
                .with_link_schedule(link_schedule);
                let members = self.assemble(&mut builder);
                builder = builder.with_lifecycle_schedule(self.compile_lifecycle(&members));
                Running {
                    service: self.service,
                    protocol: self.protocol,
                    runtime: RuntimeKind::Threaded,
                    members,
                    slot: RuntimeSlot::from_threaded(builder.start()),
                }
            }
        }
    }
}

/// The runtime-holding half of a running deployment: either a simulator or
/// a started threaded runtime, plus the actors and statistics collected at
/// settle time.  [`Running`] and the cluster layer's `RunningCluster` both
/// contain exactly one slot, so driving, settling, statistics and actor
/// inspection share this one code path.
pub(crate) struct RuntimeSlot {
    sim: Option<Simulation>,
    threaded: Option<ThreadedRuntime>,
    collected: HashMap<ProcessId, Box<dyn Actor>>,
    /// The threaded runtime's final statistics, captured at settle time so
    /// [`RuntimeSlot::stats`] keeps working after shutdown.
    collected_stats: Option<NetStats>,
    /// The threaded runtime's per-node statistics, captured at settle time
    /// so [`RuntimeSlot::node_stats`] keeps working after shutdown.
    collected_node_stats: Option<Vec<NetStats>>,
}

impl RuntimeSlot {
    pub(crate) fn from_sim(sim: Simulation) -> Self {
        Self {
            sim: Some(sim),
            threaded: None,
            collected: HashMap::new(),
            collected_stats: None,
            collected_node_stats: None,
        }
    }

    pub(crate) fn from_threaded(rt: ThreadedRuntime) -> Self {
        Self {
            sim: None,
            threaded: Some(rt),
            collected: HashMap::new(),
            collected_stats: None,
            collected_node_stats: None,
        }
    }

    /// Drives the runtime until `horizon` and returns the reached time.
    pub(crate) fn run_until(&mut self, horizon: SimTime) -> SimTime {
        if let Some(sim) = self.sim.as_mut() {
            return sim.run_until(horizon);
        }
        if let Some(rt) = self.threaded.as_ref() {
            return rt.run_until_settled(horizon);
        }
        horizon
    }

    /// Enables event tracing (simulator only).
    pub(crate) fn enable_trace(&mut self) {
        if let Some(sim) = self.sim.as_mut() {
            sim.enable_trace();
        }
    }

    /// The recorded trace, when tracing was enabled on the simulator.
    pub(crate) fn trace(&self) -> Option<&TraceLog> {
        self.sim.as_ref().and_then(|s| s.trace())
    }

    /// The runtime-wide network statistics; infallible on both runtimes.
    pub(crate) fn stats(&self) -> NetStats {
        if let Some(sim) = self.sim.as_ref() {
            return sim.stats().clone();
        }
        if let Some(rt) = self.threaded.as_ref() {
            return rt.net_stats();
        }
        self.collected_stats
            .clone()
            .expect("threaded stats are frozen at settle time")
    }

    /// The threaded runtime's per-node counter cells (`None` on the
    /// simulator, which attributes per process instead — see
    /// `Simulation::counters`).  Node indices follow the deployment order
    /// of `ThreadedBuilder::add_node`.
    pub(crate) fn node_stats(&self) -> Option<Vec<NetStats>> {
        if let Some(rt) = self.threaded.as_ref() {
            return Some(
                (0..rt.node_count())
                    .map(|node| rt.node_net_stats(node))
                    .collect(),
            );
        }
        self.collected_node_stats.clone()
    }

    /// Shuts down the threaded runtime (if any) and collects its actors for
    /// inspection.  Idempotent; a no-op on the simulator.
    pub(crate) fn settle(&mut self) {
        if let Some(rt) = self.threaded.take() {
            self.collected_stats = Some(rt.net_stats());
            self.collected_node_stats = Some(
                (0..rt.node_count())
                    .map(|node| rt.node_net_stats(node))
                    .collect(),
            );
            self.collected = rt.shutdown();
        }
    }

    /// The actor registered under `process`, as a trait object.  Call
    /// [`RuntimeSlot::settle`] first on the threaded runtime.
    pub(crate) fn actor_ref(&self, process: ProcessId) -> Option<&dyn Actor> {
        if let Some(sim) = self.sim.as_ref() {
            return sim.actor_dyn(process);
        }
        self.collected.get(&process).map(|b| b.as_ref())
    }

    /// [`RuntimeSlot::settle`] followed by [`RuntimeSlot::actor_ref`].
    pub(crate) fn actor_dyn(&mut self, process: ProcessId) -> Option<&dyn Actor> {
        self.settle();
        self.actor_ref(process)
    }

    pub(crate) fn sim(&self) -> Option<&Simulation> {
        self.sim.as_ref()
    }

    pub(crate) fn sim_mut(&mut self) -> Option<&mut Simulation> {
        self.sim.as_mut()
    }

    pub(crate) fn into_sim(self) -> Option<Simulation> {
        self.sim
    }

    /// The service machine of the member described by `procs`, when the
    /// deployment exposes one: the machine hosted by its [`PlainHost`]
    /// under [`Protocol::Crash`], the leader replica of its FS pair under
    /// [`Protocol::FailSignal`].  `None` when the process is wrapped by a
    /// fault injector or is of another shape.
    pub(crate) fn machine_at(
        &mut self,
        protocol: Protocol,
        procs: &MemberProcs,
    ) -> Option<&dyn fs_smr::machine::DeterministicMachine> {
        self.settle();
        match protocol {
            Protocol::Crash => {
                let any: &dyn std::any::Any = self.actor_ref(procs.middleware)?;
                Some(any.downcast_ref::<PlainHost>()?.machine())
            }
            Protocol::FailSignal => {
                let any: &dyn std::any::Any = self.actor_ref(procs.leader)?;
                Some(any.downcast_ref::<FsoActor>()?.machine())
            }
        }
    }
}

/// A deployed, runnable scenario: the uniform handle over both runtimes.
///
/// On the simulator, [`Running::run_until`] executes events up to the given
/// simulated horizon; on the threaded runtime it lets the wall clock reach
/// the same horizon (1 simulated second = 1 real second).  Inspection
/// methods ([`Running::delivery_log`], [`Running::app`],
/// [`Running::fail_signalled`]) work on both; on the threaded runtime the
/// first inspection shuts the node threads down and collects the actors.
pub struct Running {
    service: Box<dyn ServiceSpec>,
    protocol: Protocol,
    runtime: RuntimeKind,
    members: Vec<MemberProcs>,
    slot: RuntimeSlot,
}

impl std::fmt::Debug for Running {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Running")
            .field("service", &self.service.name())
            .field("protocol", &self.protocol)
            .field("runtime", &self.runtime)
            .field("members", &self.members.len())
            .finish()
    }
}

impl Running {
    /// The deployed members, in member order.
    pub fn members(&self) -> &[MemberProcs] {
        &self.members
    }

    /// The protocol this scenario runs.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The runtime this scenario runs on.
    pub fn runtime_kind(&self) -> RuntimeKind {
        self.runtime
    }

    /// The service's name.
    pub fn service_name(&self) -> &'static str {
        self.service.name()
    }

    /// Drives the scenario until `horizon` and returns the reached time.
    ///
    /// Simulator: runs the event loop (returns early on quiescence).
    /// Threaded runtime: sleeps until the wall clock reaches `horizon`
    /// relative to the runtime's start, returning early once the deployment
    /// has settled — nothing in flight and no timer due before the horizon
    /// (see [`ThreadedRuntime::run_until_settled`]).
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        self.slot.run_until(horizon)
    }

    /// Enables event tracing (simulator only; a no-op on the threaded
    /// runtime).  Call before [`Running::run_until`].
    pub fn enable_trace(&mut self) {
        self.slot.enable_trace();
    }

    /// The recorded trace, when tracing was enabled on the simulator.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.slot.trace()
    }

    /// The aggregate network statistics, on either runtime: sends,
    /// deliveries, drops (split into unknown-destination and link-fault
    /// drops) and executed link-fault events.  On the threaded runtime the
    /// counters are sampled live while running and frozen at
    /// [`Running::settle`] time.  Infallible: every cell of the scenario
    /// matrix reports statistics.
    pub fn stats(&self) -> NetStats {
        self.slot.stats()
    }

    /// The merged ordering-latency recorder of every member's driver — the
    /// source of the p50/p99/p999 figures.  On the threaded runtime this
    /// shuts the runtime down first.
    pub fn latencies(&mut self) -> fs_simnet::trace::LatencyRecorder {
        self.settle();
        let mut merged = fs_simnet::trace::LatencyRecorder::new();
        for i in 0..self.members.len() {
            let pid = self.members[i].app;
            if let Some(driver) = self.actor_ref(pid) {
                if let Some(rec) = self.service.latencies_of(driver) {
                    merged.merge(&rec);
                }
            }
        }
        merged
    }

    /// The merged latency summary (p50/p99/p999) across all member drivers,
    /// `None` when no latency samples were recorded.
    pub fn latency_summary(&mut self) -> Option<fs_simnet::trace::LatencySummary> {
        self.latencies().summary()
    }

    /// The merged open-loop admission counters of every member's driver.
    /// On the threaded runtime this shuts the runtime down first.
    pub fn load_stats(&mut self) -> crate::workload::LoadStats {
        self.settle();
        let mut merged = crate::workload::LoadStats::default();
        for i in 0..self.members.len() {
            let pid = self.members[i].app;
            if let Some(driver) = self.actor_ref(pid) {
                if let Some(stats) = self.service.load_stats_of(driver) {
                    merged.merge(&stats);
                }
            }
        }
        merged
    }

    /// Direct access to the underlying simulator, for link surgery and other
    /// scenario-specific interventions (`None` on the threaded runtime).
    pub fn sim(&self) -> Option<&Simulation> {
        self.slot.sim()
    }

    /// Mutable variant of [`Running::sim`].
    pub fn sim_mut(&mut self) -> Option<&mut Simulation> {
        self.slot.sim_mut()
    }

    /// Shuts down the threaded runtime (if any) and collects its actors for
    /// inspection.  Idempotent; a no-op on the simulator.
    pub fn settle(&mut self) {
        self.slot.settle();
    }

    /// The actor registered under `process`, as a trait object.  Call
    /// [`Running::settle`] first on the threaded runtime.
    fn actor_ref(&self, process: ProcessId) -> Option<&dyn Actor> {
        self.slot.actor_ref(process)
    }

    /// [`Running::settle`] followed by [`Running::actor_ref`].
    fn actor_dyn(&mut self, process: ProcessId) -> Option<&dyn Actor> {
        self.slot.actor_dyn(process)
    }

    /// Downcasts member `i`'s application / workload-driver actor.
    ///
    /// On the threaded runtime this shuts the runtime down first.
    pub fn app<T: Actor>(&mut self, i: u32) -> Option<&T> {
        let pid = self.members.get(i as usize)?.app;
        let any: &dyn std::any::Any = self.actor_dyn(pid)?;
        any.downcast_ref::<T>()
    }

    /// Member `i`'s delivery log, as `(origin, seq)` pairs in delivery
    /// order — the uniform agreement probe across services, protocols and
    /// runtimes.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range or the driver actor cannot be
    /// inspected (which would be a harness bug).
    pub fn delivery_log(&mut self, i: u32) -> Vec<(MemberId, u64)> {
        self.settle();
        let pid = self.members[i as usize].app;
        let driver = self.actor_ref(pid).expect("driver actor exists");
        self.service
            .delivery_log_of(driver)
            .expect("driver actor is inspectable")
    }

    /// Every member's delivery log, in member order.
    pub fn delivery_logs(&mut self) -> Vec<Vec<(MemberId, u64)>> {
        (0..self.members.len() as u32)
            .map(|i| self.delivery_log(i))
            .collect()
    }

    /// Member `i`'s service machine, when the deployment exposes one: the
    /// machine hosted by the member's [`PlainHost`] under [`Protocol::Crash`],
    /// the leader replica of its FS pair under [`Protocol::FailSignal`].
    /// `None` when the process is wrapped by a fault injector or is of
    /// another shape.  On the threaded runtime this shuts the runtime down
    /// first.
    fn machine_of(&mut self, i: u32) -> Option<&dyn fs_smr::machine::DeterministicMachine> {
        let procs = *self.members.get(i as usize)?;
        self.slot.machine_at(self.protocol, &procs)
    }

    /// Member `i`'s **machine-level** committed delivery log, the recovery
    /// plane's convergence probe.  Unlike [`Running::delivery_log`] (what the
    /// member's *driver* saw as upcalls) this reads the ordered log the
    /// service machine itself holds — which state transfer rebuilds on a
    /// recovered or replaced member, so after catch-up it is identical
    /// across all live members even though the rejoiner's driver never saw
    /// the missed upcalls.  `None` when the service machine keeps no such
    /// log or cannot be inspected.
    pub fn machine_log(&mut self, i: u32) -> Option<Vec<(MemberId, u64)>> {
        self.machine_of(i)?.delivered_log()
    }

    /// A digest of member `i`'s machine-level application state (see
    /// [`Running::machine_log`]); `None` when the machine exposes none.
    pub fn machine_digest(&mut self, i: u32) -> Option<u64> {
        self.machine_of(i)?.app_digest()
    }

    /// Member `i`'s interceptor (fail-signal protocol only).
    pub fn interceptor(&mut self, i: u32) -> Option<&FsInterceptor> {
        if self.protocol != Protocol::FailSignal {
            return None;
        }
        let pid = self.members.get(i as usize)?.middleware;
        let any: &dyn std::any::Any = self.actor_dyn(pid)?;
        any.downcast_ref::<FsInterceptor>()
    }

    /// True when any member's local FS pair has emitted its fail-signal
    /// (always false under [`Protocol::Crash`]).
    pub fn fail_signalled(&mut self) -> bool {
        if self.protocol != Protocol::FailSignal {
            return false;
        }
        (0..self.members.len() as u32).any(|i| {
            self.interceptor(i)
                .is_some_and(|x| x.local_fail_signalled())
        })
    }

    /// Decomposes a simulator-backed run into the raw simulation and member
    /// handles (used by the legacy deployment forwards).  `None` on the
    /// threaded runtime.
    pub fn into_sim(self) -> Option<(Simulation, Vec<MemberProcs>)> {
        Some((self.slot.into_sim()?, self.members))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{NewTopService, SmrKvService};
    use fs_newtop::suspector::SuspectorConfig;

    fn agree(run: &mut Running, expected: usize) {
        let reference = run.delivery_log(0);
        assert_eq!(reference.len(), expected);
        for i in 1..run.members().len() as u32 {
            assert_eq!(run.delivery_log(i), reference, "member {i} diverged");
        }
    }

    #[test]
    fn fs_newtop_scenario_orders_on_the_simulator() {
        let mut run = Scenario::new(NewTopService::new())
            .members(3)
            .workload(Workload::quick(4))
            .build();
        assert_eq!(run.service_name(), "newtop");
        assert_eq!(run.protocol(), Protocol::FailSignal);
        run.run_until(SimTime::from_secs(300));
        agree(&mut run, 12);
        assert!(!run.fail_signalled());
        assert!(run.stats().messages_sent > 0);
    }

    #[test]
    fn crash_newtop_scenario_orders_on_the_simulator() {
        let mut run = Scenario::new(NewTopService::new().suspector(SuspectorConfig::disabled()))
            .members(3)
            .protocol(Protocol::Crash)
            .workload(Workload::quick(4))
            .build();
        run.run_until(SimTime::from_secs(300));
        agree(&mut run, 12);
        assert!(!run.fail_signalled(), "crash protocol has no fail-signals");
        assert!(run.interceptor(0).is_none());
    }

    #[test]
    fn fs_smr_scenario_orders_on_the_simulator() {
        let mut run = Scenario::new(SmrKvService::new())
            .members(3)
            .workload(Workload::quick(4))
            .build();
        run.run_until(SimTime::from_secs(300));
        agree(&mut run, 12);
        assert!(!run.fail_signalled());
    }

    #[test]
    fn crash_smr_scenario_orders_on_the_simulator() {
        let mut run = Scenario::new(SmrKvService::new())
            .members(4)
            .protocol(Protocol::Crash)
            .workload(Workload::quick(3))
            .build();
        run.run_until(SimTime::from_secs(300));
        agree(&mut run, 12);
    }

    #[test]
    fn crash_recover_member_converges_after_catch_up() {
        use crate::service::SmrDriver;
        // Member 1 crashes mid-run and recovers warm: the ordering rounds it
        // missed while down must be filled by state transfer, after which
        // every machine-level log and store digest agrees.
        let faults = FaultSchedule::none()
            .crash_member_at(SimTime::from_millis(300), MemberId(1))
            .recover_member_at(SimTime::from_millis(600), MemberId(1));
        let mut run = Scenario::new(SmrKvService::new())
            .members(3)
            .protocol(Protocol::Crash)
            .workload(Workload::quick(30))
            .faults(faults)
            .build();
        run.run_until(SimTime::from_secs(600));
        let reference = run.machine_log(0).expect("machine log");
        assert!(reference.len() > 30, "survivors kept ordering under load");
        for i in 1..3 {
            assert_eq!(run.machine_log(i).unwrap(), reference, "member {i}");
            assert_eq!(run.machine_digest(i), run.machine_digest(0));
        }
        // The recovered member measured its rejoin round-trip, and every
        // member observed the rejoin's view transition.
        let rejoined = run.app::<SmrDriver>(1).expect("driver");
        assert!(rejoined.rejoin_latency().is_some());
        for i in 0..3 {
            assert!(!run.app::<SmrDriver>(i).unwrap().views().is_empty());
        }
    }

    #[test]
    fn cold_replacement_member_converges_via_state_transfer() {
        use crate::service::SmrDriver;
        // Member 2 is killed and replaced by a cold incarnation with no
        // state at all: only the snapshot path can make it converge.
        let faults = FaultSchedule::none()
            .crash_member_at(SimTime::from_millis(300), MemberId(2))
            .replace_member_at(SimTime::from_millis(700), MemberId(2));
        let mut run = Scenario::new(SmrKvService::new())
            .members(3)
            .protocol(Protocol::Crash)
            .workload(Workload::quick(25))
            .faults(faults)
            .build();
        run.run_until(SimTime::from_secs(600));
        let reference = run.machine_log(0).expect("machine log");
        assert!(!reference.is_empty());
        assert_eq!(run.machine_log(2).unwrap(), reference);
        assert_eq!(run.machine_digest(2), run.machine_digest(0));
        // The replacement incarnation observes rather than drives load, and
        // its rejoin completed.
        let replacement = run.app::<SmrDriver>(2).expect("driver");
        assert_eq!(replacement.sent(), 0);
        assert!(replacement.rejoin_latency().is_some());
    }

    #[test]
    fn fs_member_recovers_warm_and_converges() {
        // Under the fail-signal protocol the whole member — driver,
        // interceptor, both wrappers — goes down and comes back warm; the
        // duplicated machines then run the same catch-up protocol through
        // the signed wrapper path.
        let faults = FaultSchedule::none()
            .crash_member_at(SimTime::from_millis(400), MemberId(1))
            .recover_member_at(SimTime::from_millis(900), MemberId(1));
        let mut run = Scenario::new(SmrKvService::new())
            .members(3)
            .protocol(Protocol::FailSignal)
            .workload(Workload::quick(20))
            .faults(faults)
            .build();
        run.run_until(SimTime::from_secs(3600));
        assert!(
            !run.fail_signalled(),
            "a clean crash/recover must not trip the pair's own fail-signal"
        );
        let reference = run.machine_log(0).expect("leader machine log");
        assert!(!reference.is_empty());
        for i in 1..3 {
            assert_eq!(run.machine_log(i).unwrap(), reference, "member {i}");
            assert_eq!(run.machine_digest(i), run.machine_digest(0));
        }
    }

    #[test]
    #[should_panic(expected = "which the group does not deploy")]
    fn lifecycle_targeting_unknown_member_panics() {
        let faults = FaultSchedule::none().crash_member_at(SimTime::from_secs(1), MemberId(9));
        let _ = Scenario::new(SmrKvService::new())
            .members(3)
            .faults(faults)
            .build();
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let build = |seed: u64| {
            let mut run = Scenario::new(SmrKvService::new())
                .members(3)
                .seed(seed)
                .workload(Workload::quick(3))
                .build();
            run.run_until(SimTime::from_secs(300));
            (run.delivery_logs(), run.stats())
        };
        let (logs_a, stats_a) = build(7);
        let (logs_b, stats_b) = build(7);
        assert_eq!(logs_a, logs_b);
        assert_eq!(stats_a, stats_b);
    }
}
