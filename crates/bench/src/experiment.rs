//! Per-figure experiment drivers.
//!
//! Each function regenerates one figure of the paper's evaluation (§4) as a
//! table of rows — one row per x-axis point per system — plus ablations
//! called out in DESIGN.md.  Absolute values are those of the calibrated
//! simulation; the *shape* (who wins, by what rough factor, where the knee
//! falls) is what reproduces the paper.

use serde::{Deserialize, Serialize};

use fs_common::config::NodeBudget;
use fs_common::time::{SimDuration, SimTime};
use fs_crypto::cost::CryptoCostModel;
use fs_newtop::app::TrafficConfig;
use fs_newtop::suspector::SuspectorConfig;
use fs_newtop_bft::deployment::DeploymentParams;

use fs_common::id::MemberId;
use fs_harness::FaultSchedule;

use crate::measure::{measure, measure_with_faults, RunMetrics, System};

/// Common knobs of an experiment sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Messages each member multicasts (the paper uses 1000; smaller values
    /// keep regeneration quick while preserving the shapes).
    pub messages_per_member: u64,
    /// Interval between consecutive multicasts of one member.
    pub send_interval: SimDuration,
    /// Random seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            messages_per_member: default_messages(),
            send_interval: SimDuration::from_millis(40),
            seed: 2003,
        }
    }
}

/// Number of messages per member used by the figure binaries; override with
/// the `FS_BENCH_MESSAGES` environment variable (the paper uses 1000).
pub fn default_messages() -> u64 {
    crate::env::env_u64("FS_BENCH_MESSAGES", 150)
}

fn params_for(members: u32, payload: usize, config: &ExperimentConfig) -> DeploymentParams {
    let traffic = TrafficConfig::paper_default()
        .with_messages(config.messages_per_member)
        .with_interval(config.send_interval)
        .with_payload_size(payload);
    // The paper eliminates false suspicions (large timeouts on a lightly
    // loaded LAN); ping traffic itself is negligible but we disable it so
    // message counts reflect the ordering protocol only.
    DeploymentParams::paper(members)
        .with_traffic(traffic)
        .with_seed(config.seed)
        .with_suspector(SuspectorConfig::disabled())
}

/// One row of a figure table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// The x-axis value (group size for Figures 6 and 7, payload bytes for
    /// Figure 8).
    pub x: u64,
    /// Which system the row belongs to.
    pub system: System,
    /// The full metrics of the run.
    pub metrics: RunMetrics,
}

/// A regenerated figure: its identity and its rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Which paper figure this regenerates ("figure-6", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The meaning of the x axis.
    pub x_label: String,
    /// The rows, grouped by x then system.
    pub rows: Vec<FigureRow>,
}

impl Figure {
    /// The rows of one system, in x order.
    pub fn series(&self, system: System) -> Vec<&FigureRow> {
        self.rows.iter().filter(|r| r.system == system).collect()
    }

    /// Renders the figure as an aligned text table (one line per x value).
    pub fn to_table(&self, value: impl Fn(&RunMetrics) -> f64, value_label: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.title));
        out.push_str(&format!(
            "{:>10}  {:>14}  {:>14}  {:>9}\n",
            self.x_label, "NewTOP", "FS-NewTOP", "overhead"
        ));
        let xs: Vec<u64> = {
            let mut xs: Vec<u64> = self.rows.iter().map(|r| r.x).collect();
            xs.sort_unstable();
            xs.dedup();
            xs
        };
        for x in xs {
            let newtop = self
                .rows
                .iter()
                .find(|r| r.x == x && r.system == System::NewTop)
                .map(|r| value(&r.metrics));
            let fs = self
                .rows
                .iter()
                .find(|r| r.x == x && r.system == System::FsNewTop)
                .map(|r| value(&r.metrics));
            let overhead = match (newtop, fs) {
                (Some(n), Some(f)) if n.is_finite() && n != 0.0 => {
                    format!("{:+.0}%", (f - n) / n * 100.0)
                }
                _ => "-".to_string(),
            };
            out.push_str(&format!(
                "{:>10}  {:>14}  {:>14}  {:>9}\n",
                x,
                newtop
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".into()),
                fs.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
                overhead
            ));
        }
        out.push_str(&format!(
            "({value_label}; {} messages/member)\n",
            self.rows
                .first()
                .map(|r| r.metrics.messages_per_member)
                .unwrap_or(0)
        ));
        out
    }
}

fn sweep(
    id: &str,
    title: &str,
    x_label: &str,
    points: impl Iterator<Item = (u64, u32, usize)>,
    config: &ExperimentConfig,
) -> Figure {
    sweep_with_faults(id, title, x_label, points, config, |_| {
        FaultSchedule::none()
    })
}

fn sweep_with_faults(
    id: &str,
    title: &str,
    x_label: &str,
    points: impl Iterator<Item = (u64, u32, usize)>,
    config: &ExperimentConfig,
    faults: impl Fn(u32) -> FaultSchedule,
) -> Figure {
    let mut rows = Vec::new();
    for (x, members, payload) in points {
        let params = params_for(members, payload, config);
        for system in [System::NewTop, System::FsNewTop] {
            let metrics = measure_with_faults(system, &params, faults(members));
            eprintln!(
                "  [{id}] x={x} {}: latency {:.1} ms, throughput {:.1} msg/s, complete={}",
                system.label(),
                metrics.mean_latency_ms,
                metrics.throughput_msgs_per_sec,
                metrics.is_complete()
            );
            rows.push(FigureRow { x, system, metrics });
        }
    }
    Figure {
        id: id.to_string(),
        title: title.to_string(),
        x_label: x_label.to_string(),
        rows,
    }
}

/// Figure 6: symmetric total-order latency for 3-byte messages, group sizes
/// 2–10, NewTOP vs FS-NewTOP.
pub fn figure6(config: &ExperimentConfig) -> Figure {
    sweep(
        "figure-6",
        "Ordering latency vs group size (3-byte messages, symmetric total order)",
        "members",
        (2..=10u32).map(|n| (u64::from(n), n, 3)),
        config,
    )
}

/// Figure 7: throughput for 3-byte messages, group sizes 2–15.
pub fn figure7(config: &ExperimentConfig) -> Figure {
    sweep(
        "figure-7",
        "Throughput vs group size (3-byte messages)",
        "members",
        (2..=15u32).map(|n| (u64::from(n), n, 3)),
        config,
    )
}

/// Mild, uniform link degradation: every inter-member link loses 0.5 % of
/// its messages and gains 1 ms of jittered one-way delay shortly after the
/// workload starts.  Small enough that neither suspicion timeouts nor the
/// FS pairs' δ are threatened — the graceful-degradation regime, as opposed
/// to the A2-violation regime of `examples/a2_violation.rs`.
fn mild_degradation(members: u32) -> FaultSchedule {
    let onset = SimTime::from_millis(200);
    let mut faults = FaultSchedule::none();
    for a in 0..members {
        for b in (a + 1)..members {
            faults = faults
                .lossy_link(onset, MemberId(a), MemberId(b), 0.005)
                .slow_link(
                    onset,
                    MemberId(a),
                    MemberId(b),
                    SimDuration::from_millis(1),
                    SimDuration::from_micros(500),
                );
        }
    }
    faults
}

/// The graceful-degradation variant of Figure 6: the same latency sweep run
/// under `mild_degradation` on every link.  Latency rises for both
/// systems, and the delivered fraction (`RunMetrics::total_deliveries` vs
/// `RunMetrics::expected_deliveries`) records what the loss cost — with no
/// fail-signals and no false suspicions, since the degradation stays well
/// inside the timing assumptions.
pub fn figure6_degraded(config: &ExperimentConfig) -> Figure {
    sweep_with_faults(
        "figure-6-degraded",
        "Ordering latency vs group size under mild link loss and delay",
        "members",
        (2..=10u32).map(|n| (u64::from(n), n, 3)),
        config,
        mild_degradation,
    )
}

/// The graceful-degradation variant of Figure 7 (throughput sweep under
/// `mild_degradation`).
pub fn figure7_degraded(config: &ExperimentConfig) -> Figure {
    sweep_with_faults(
        "figure-7-degraded",
        "Throughput vs group size under mild link loss and delay",
        "members",
        (2..=15u32).map(|n| (u64::from(n), n, 3)),
        config,
        mild_degradation,
    )
}

/// Figure 8: throughput for a 10-member group, payload sizes 0k–10k.
pub fn figure8(config: &ExperimentConfig) -> Figure {
    sweep(
        "figure-8",
        "Throughput vs message size (10 members)",
        "kbytes",
        (0..=10u64).map(|k| (k, 10, if k == 0 { 3 } else { (k as usize) * 1000 })),
        config,
    )
}

/// Ablation A3: how the signature cost model shapes the FS-NewTOP overhead
/// (free vs modern HMAC vs 2003-era RSA), at a fixed group size.
pub fn ablation_sign_cost(config: &ExperimentConfig, members: u32) -> Vec<(String, RunMetrics)> {
    let models: [(&str, CryptoCostModel); 3] = [
        ("free", CryptoCostModel::free()),
        ("modern-hmac", CryptoCostModel::modern_hmac()),
        ("era-2003-rsa", CryptoCostModel::era_2003()),
    ];
    let mut out = Vec::new();
    for (name, model) in models {
        let params = params_for(members, 3, config).with_crypto_costs(model);
        let metrics = measure(System::FsNewTop, &params);
        out.push((name.to_string(), metrics));
    }
    // The crash-tolerant baseline for reference.
    let baseline = measure(System::NewTop, &params_for(members, 3, config));
    out.push(("newtop-baseline".to_string(), baseline));
    out
}

/// Ablation A1: node-count arithmetic (4f+2 vs 3f+1 vs 2f+1), straight from
/// the paper's cost analysis.
pub fn ablation_node_budget(max_faults: u32) -> Vec<(u32, u32, u32, u32)> {
    (0..=max_faults)
        .map(|f| {
            let b = NodeBudget::new(f);
            (
                f,
                b.application_replicas(),
                b.fail_signal_nodes(),
                b.classical_bft_nodes(),
            )
        })
        .collect()
}

/// Ablation A2: false suspicions.  Runs crash-tolerant NewTOP with an
/// aggressive suspector under inflated message delays and reports how many
/// (false) view changes the applications observed; the FS-NewTOP system run
/// under the same conditions observes none.
pub fn ablation_false_suspicion(config: &ExperimentConfig) -> (u64, u64) {
    use fs_harness::Protocol;
    use fs_newtop::app::AppProcess;
    use fs_newtop_bft::deployment::Deployment;
    use fs_simnet::link::LinkModel;

    let members = 4u32;
    // A small ping timeout combined with slow, heavily jittered links makes
    // timeout-based suspicion fire even though nobody has failed.
    let base = params_for(members, 3, config);
    let params = base
        .clone()
        .with_traffic(
            base.traffic
                .with_messages(config.messages_per_member.min(30)),
        )
        .with_suspector(SuspectorConfig::aggressive(SimDuration::from_millis(2)));

    // Replace the lightly loaded LAN with a slow, jittery asynchronous
    // network: real delays now exceed the suspector's expectations, which is
    // exactly the condition under which timeout-based suspicions become
    // false.  Both systems run over the same inflated network, configured
    // through the scenario's topology axis (`examples/a2_violation.rs`
    // stages the finer-grained, mid-run variant of this experiment through
    // `FaultSchedule::slow_link`).
    let slow_net = LinkModel::AsyncNet {
        base: SimDuration::from_millis(80),
        bandwidth_bps: 1_250_000,
        jitter_mean: SimDuration::from_millis(40),
        drop_prob: 0.0,
    };

    let count_views = |deployment: &mut Deployment| -> u64 {
        deployment.run(SimTime::from_secs(600));
        deployment
            .members
            .iter()
            .map(|h| {
                deployment
                    .sim
                    .actor::<AppProcess>(h.app)
                    .map(|a| a.views_seen().len() as u64)
                    .unwrap_or(0)
            })
            .sum()
    };

    let mut newtop = Deployment::from_running(
        params
            .scenario(Protocol::Crash)
            .link_model(slow_net)
            .build(),
    );
    let newtop_views = count_views(&mut newtop);

    let mut fs = Deployment::from_running(
        params
            .scenario(Protocol::FailSignal)
            .link_model(slow_net)
            .build(),
    );
    let fs_views = count_views(&mut fs);
    (newtop_views, fs_views)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            messages_per_member: 3,
            send_interval: SimDuration::from_millis(30),
            seed: 7,
        }
    }

    #[test]
    fn node_budget_table_matches_paper() {
        let table = ablation_node_budget(3);
        assert_eq!(table[1], (1, 3, 6, 4));
        assert_eq!(table[2], (2, 5, 10, 7));
    }

    #[test]
    fn figure_table_rendering_contains_both_systems() {
        // A miniature figure-6 sweep over two group sizes only.
        let config = tiny();
        let fig = sweep(
            "figure-6-mini",
            "mini",
            "members",
            [(2u64, 2u32, 3usize), (3, 3, 3)].into_iter(),
            &config,
        );
        assert_eq!(fig.rows.len(), 4);
        assert_eq!(fig.series(System::NewTop).len(), 2);
        let table = fig.to_table(|m| m.mean_latency_ms, "mean ordering latency, ms");
        assert!(table.contains("NewTOP"));
        assert!(table.contains("FS-NewTOP"));
        assert!(table.contains("members"));
    }

    #[test]
    fn sign_cost_ablation_orders_costs() {
        let out = ablation_sign_cost(&tiny(), 3);
        let get = |name: &str| {
            out.iter()
                .find(|(n, _)| n == name)
                .map(|(_, m)| m.mean_latency_ms)
                .unwrap()
        };
        assert!(get("free") <= get("era-2003-rsa"));
        assert!(get("modern-hmac") <= get("era-2003-rsa"));
    }

    #[test]
    fn false_suspicion_ablation_shows_the_benefit() {
        let (newtop_views, fs_views) = ablation_false_suspicion(&tiny());
        // The timeout-based suspector splits the group even though nobody
        // failed; the fail-signal suspector never does.
        assert!(newtop_views > 0, "expected false suspicions in NewTOP");
        assert_eq!(fs_views, 0, "FS-NewTOP must not split without a failure");
    }

    #[test]
    fn default_messages_env_override() {
        // Without the env var the default is used.
        assert!(default_messages() >= 1);
    }
}
