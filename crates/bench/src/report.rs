//! Writing experiment results to the console and to JSON files.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::experiment::Figure;
use crate::measure::RunMetrics;

/// The directory experiment results are written to (`results/` under the
/// workspace root, or the current directory as a fallback).
pub fn results_dir() -> PathBuf {
    let candidate = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    candidate
}

/// Writes `figure` as pretty-printed JSON under [`results_dir`] and returns
/// the path written.
///
/// # Errors
///
/// Returns an I/O error when the results directory cannot be created or the
/// file cannot be written.
pub fn write_figure_json(figure: &Figure) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.json", figure.id));
    let mut file = std::fs::File::create(&path)?;
    let json = serde_json::to_string_pretty(figure).expect("figure serialises");
    file.write_all(json.as_bytes())?;
    Ok(path)
}

/// Renders a named list of runs (an ablation) as an aligned text table.
pub fn ablation_table(title: &str, rows: &[(String, RunMetrics)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!(
        "{:<20} {:>14} {:>16} {:>12}\n",
        "variant", "latency (ms)", "throughput (m/s)", "complete"
    ));
    for (name, m) in rows {
        out.push_str(&format!(
            "{:<20} {:>14.1} {:>16.1} {:>12}\n",
            name,
            m.mean_latency_ms,
            m.throughput_msgs_per_sec,
            m.is_complete()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::System;

    fn dummy_metrics() -> RunMetrics {
        RunMetrics {
            system: System::NewTop,
            members: 3,
            payload_size: 3,
            messages_per_member: 5,
            mean_latency_ms: 12.5,
            p95_latency_ms: 20.0,
            throughput_msgs_per_sec: 80.0,
            total_deliveries: 45,
            expected_deliveries: 45,
            middleware_messages: 500,
            finished_at_ms: 1000.0,
            fail_signals_observed: false,
        }
    }

    #[test]
    fn ablation_table_lists_variants() {
        let rows = vec![("baseline".to_string(), dummy_metrics())];
        let table = ablation_table("test", &rows);
        assert!(table.contains("baseline"));
        assert!(table.contains("12.5"));
        assert!(table.contains("true"));
    }

    #[test]
    fn results_dir_is_under_workspace() {
        assert!(results_dir().ends_with("results"));
    }

    #[test]
    fn figure_json_round_trips() {
        let figure = Figure {
            id: "figure-test".into(),
            title: "t".into(),
            x_label: "x".into(),
            rows: vec![],
        };
        let json = serde_json::to_string(&figure).unwrap();
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "figure-test");
    }
}
