//! Ablation A1: node-count cost of the fail-signal approach (4f+2) versus
//! the classical Byzantine optimum (3f+1) and plain application replication
//! (2f+1), as analysed in §1 and §3.1 of the paper.

use fs_bench::experiment::ablation_node_budget;

fn main() {
    println!("# ablation A1 — node budget");
    println!(
        "{:>3} {:>16} {:>18} {:>16} {:>8}",
        "f", "app replicas", "fail-signal nodes", "classical BFT", "extra"
    );
    for (f, replicas, fs_nodes, classical) in ablation_node_budget(5) {
        println!(
            "{f:>3} {replicas:>16} {fs_nodes:>18} {classical:>16} {:>8}",
            fs_nodes - classical
        );
    }
}
