//! Host-side hot-path benchmark: wall-clock cost of the authenticated wire
//! path on the machine actually running the suite.
//!
//! The simulator charges *simulated* 2003-era costs to reproduce the paper's
//! figures; this binary measures what the host itself pays for the same
//! steps — encode, sign, deliver, verify — and records the numbers in
//! `results/bench-hotpath.json` so every PR leaves a perf trajectory behind.
//!
//! Sections:
//!
//! * **hmac** — one-shot `HmacSha256::mac` (re-expands the RFC 2104 key
//!   schedule per message) vs the cached [`HmacKey`] state that
//!   `SigningKey` now holds (≥ 1.5× on small payloads), plus a per-backend
//!   sweep: cached-key MAC throughput (MB/s) on the scalar and multi-block
//!   compress backends, and the SIMD shared-schedule batch path's per-MAC
//!   cost at batch 8.
//! * **verify_batch** — `Signature::verify_batch_uncached` across an
//!   authenticator vector (one message, n MACs, shared inner schedule):
//!   per-MAC nanoseconds must fall as the batch grows.
//! * **encode** — `Wire::to_wire` (one sized allocation, refcount-shared
//!   `Bytes`) vs the legacy `Wire::to_wire_vec` growth-from-zero path, on
//!   the candidate frames the wrapper pair exchanges.
//! * **sign_verify** — the full double-signature round: build an
//!   [`FsOutput`], wire round-trip it, verify it at a destination — both
//!   the raw cryptographic cost (`verify_ns`, memo bypassed) and the
//!   memoised cost a co-hosted duplicate destination pays
//!   (`verify_memo_ns`).
//! * **scheduler** — the simulator's future event set under the hold model
//!   (pop one event, push a successor) at 1 k and 100 k pending events:
//!   the legacy binary heap vs the calendar queue, plus slab (`Vec` index)
//!   vs `BTreeMap` actor lookup.
//! * **pipeline** — a complete 3-member FS-NewTOP deployment (interceptors,
//!   wrapper pairs, NewTOP GC) driven to quiescence on the discrete-event
//!   simulator; host wall-clock per ordered delivery and per simulated
//!   event.  **pipeline_large** repeats it at a larger group size, where
//!   the pending event set is big enough for the calendar queue to matter.
//!   **pipeline_batched** repeats the 3-member deployment with request
//!   batching on (`FS_BENCH_HOTPATH_BATCH`, default 8): one ordering round
//!   and one signed frame cover a whole batch, so deliveries/host-sec must
//!   rise well above the unbatched row.
//! * **send_contention** — the threaded runtime's cross-node send path
//!   under contention: ping/echo actor pairs on distinct nodes hammer
//!   bidirectional sends concurrently, ungated (fault-free fast path, the
//!   link gate is never materialised) and gated (a harmless scheduled heal
//!   forces every send through the snapshot-published link gate).  The
//!   ungated/gated delta prices the gate itself, and the gate row's
//!   gate-wait p99 bounds the per-send snapshot-revalidation cost.
//!
//! `FS_BENCH_HOTPATH_ITERS` scales the micro-benchmark iteration counts
//! (default 100 000); `FS_BENCH_HOTPATH_MESSAGES` the per-member pipeline
//! message count (default 100); `FS_BENCH_HOTPATH_LARGE_MEMBERS` the large
//! pipeline's group size (default 9); `FS_BENCH_HOTPATH_CONTENTION_PAIRS`
//! and `FS_BENCH_HOTPATH_CONTENTION_ROUNDS` size the contention section
//! (default 4 pairs × 1 000 round trips).  CI runs everything small.
//!
//! **Regression guard:** when `FS_BENCH_HOTPATH_REF` names a reference
//! report (normally the committed `results/bench-hotpath.json`), the run
//! fails (exit 3) if the 3-member pipeline's ordered-deliveries/host-sec —
//! unbatched, or batched when the reference carries that row — drops more
//! than `FS_BENCH_HOTPATH_MAX_REGRESSION` (default 0.20, i.e. 20%) below
//! the reference.  References that carry the `send_contention` section also
//! arm a guard on the gated row's sends/host-sec, so a contended-send-path
//! regression fails the run the same way.

use std::hint::black_box;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use std::collections::BTreeMap;

use failsignal::message::{signing_bytes, FsContent, FsOutput, FsoInbound, PairMessage};
use failsignal::receiver::FsReceiver;
use fs_bench::env::{env_f64, env_u64};
use fs_bench::report::results_dir;
use fs_common::codec::Wire;
use fs_common::id::{FsId, NodeId, ProcessId};
use fs_common::rng::DetRng;
use fs_common::time::SimTime;
use fs_common::Bytes;
use fs_crypto::hmac::{HmacKey, HmacSha256, MacSchedule};
use fs_crypto::keys::{provision, SignerId};
use fs_crypto::sha256::CompressBackend;
use fs_crypto::sig::Signature;
use fs_harness::Protocol;
use fs_newtop::app::TrafficConfig;
use fs_newtop_bft::deployment::{Deployment, DeploymentParams};
use fs_simnet::sched::{EventQueue, ScheduledEvent, SchedulerKind};
use fs_simnet::{
    Actor, Context, LinkFault, LinkSchedule, LinkScope, ThreadedBuilder, ThreadedConfig,
};
use fs_smr::machine::Endpoint;

/// Payload sizes exercised by the micro sections: the paper's "0k" 3-byte
/// message, a cache-line-ish frame, 1 kB and the paper's 10 kB maximum.
const PAYLOAD_SIZES: [usize; 4] = [3, 64, 1024, 10240];

/// Times `op` over `iters` iterations (after a 1/10 warm-up) and returns
/// mean nanoseconds per iteration.
fn time_ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10).max(1) {
        op();
    }
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Scales the iteration budget down for large payloads so the benchmark's
/// wall-clock stays roughly flat across sizes.
fn scaled_iters(base: u64, payload: usize) -> u64 {
    (base / (1 + payload as u64 / 64)).max(100)
}

#[derive(Debug, Serialize)]
struct HmacRow {
    payload_bytes: usize,
    one_shot_ns: f64,
    /// Cached-key MAC on the process's active (default) backend — the same
    /// field older reports carried, so trajectories stay comparable.
    cached_key_ns: f64,
    /// one_shot_ns / cached_key_ns — the win from precomputing the key
    /// schedule once per signer.
    speedup: f64,
    /// Cached-key MAC pinned to the scalar (oracle) backend.
    scalar_ns: f64,
    /// Cached-key MAC pinned to the multi-block backend.
    multiblock_ns: f64,
    /// Per-MAC cost of the SIMD shared-schedule batch path at batch 8
    /// (one message, 8 keys).
    simd_batch8_per_mac_ns: f64,
    scalar_mb_per_s: f64,
    multiblock_mb_per_s: f64,
    simd_batch8_mb_per_s: f64,
}

#[derive(Debug, Serialize)]
struct VerifyBatchRow {
    payload_bytes: usize,
    /// Authenticators verified per call (one message, `batch` MACs).
    batch: usize,
    total_ns: f64,
    /// total_ns / batch — must fall as the batch grows (schedule sharing +
    /// lane-parallel rounds).
    per_mac_ns: f64,
}

#[derive(Debug, Serialize)]
struct EncodeRow {
    payload_bytes: usize,
    frame_bytes: usize,
    to_wire_ns: f64,
    to_wire_vec_ns: f64,
}

#[derive(Debug, Serialize)]
struct SignVerifyRow {
    payload_bytes: usize,
    sign_double_ns: f64,
    wire_round_trip_ns: f64,
    /// True cryptographic cost of a destination-side double verify (memo
    /// bypassed).
    verify_ns: f64,
    /// Cost a co-hosted duplicate destination pays: the host-side memo hit.
    verify_memo_ns: f64,
}

#[derive(Debug, Serialize)]
struct SchedulerRow {
    pending_events: usize,
    /// Hold operation (pop + push a successor) on the legacy binary heap.
    legacy_heap_hold_ns: f64,
    /// The same hold operation on the calendar queue.
    calendar_hold_ns: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct ActorLookupRow {
    actors: usize,
    /// `ProcessId → slot` lookup through a `BTreeMap` (the pre-refactor
    /// actor table).
    btreemap_lookup_ns: f64,
    /// The slab path: a dense `Vec` indexed by the id.
    slab_lookup_ns: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct PipelineReport {
    members: u32,
    messages_per_member: u64,
    /// Requests per ordering round (1 = unbatched).
    batch_max: u32,
    total_deliveries: u64,
    sim_events: u64,
    host_elapsed_ms: f64,
    deliveries_per_host_sec: f64,
    host_us_per_delivery: f64,
    host_us_per_sim_event: f64,
}

#[derive(Debug, Serialize)]
struct ContentionRow {
    /// Whether the snapshot-published link gate sat on the send path.
    gated: bool,
    node_pairs: u32,
    rounds_per_pair: u64,
    /// Cross-node sends actually performed (every send here crosses nodes).
    cross_node_sends: u64,
    host_elapsed_ms: f64,
    /// The contended-send-path metric: cross-node sends per host-second
    /// aggregated over all pairs.
    sends_per_host_sec: f64,
    /// p99 of the per-send gate-snapshot revalidation (0 on the ungated
    /// row, where no gate exists to wait on).
    gate_wait_p99_ns: u64,
}

#[derive(Debug, Serialize)]
struct HotpathReport {
    id: String,
    iterations: u64,
    hmac: Vec<HmacRow>,
    verify_batch: Vec<VerifyBatchRow>,
    encode: Vec<EncodeRow>,
    sign_verify: Vec<SignVerifyRow>,
    scheduler: Vec<SchedulerRow>,
    actor_lookup: Vec<ActorLookupRow>,
    pipeline: PipelineReport,
    pipeline_large: PipelineReport,
    /// The 3-member pipeline again with request batching on: one ordering
    /// round (and one signed frame) covers `batch_max` requests.
    pipeline_batched: PipelineReport,
    /// The threaded cross-node send path under contention, ungated then
    /// gated (see the module docs).
    send_contention: Vec<ContentionRow>,
}

fn bench_hmac(iters: u64) -> Vec<HmacRow> {
    let key_bytes = [0xa5u8; 32];
    let cached = HmacKey::new(&key_bytes);
    let scalar_key = HmacKey::new_with_backend(CompressBackend::Scalar, &key_bytes);
    let multiblock_key = HmacKey::new_with_backend(CompressBackend::MultiBlock, &key_bytes);
    let batch_keys: Vec<HmacKey> = (0..8u8)
        .map(|i| HmacKey::new_with_backend(CompressBackend::Simd, &[0xa5 ^ i; 32]))
        .collect();
    let batch_refs: Vec<&HmacKey> = batch_keys.iter().collect();
    let mb_per_s = |size: usize, ns: f64| size as f64 * 1e3 / ns;
    PAYLOAD_SIZES
        .iter()
        .map(|&size| {
            let msg: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let n = scaled_iters(iters, size);
            let one_shot_ns = time_ns_per_op(n, || {
                black_box(HmacSha256::mac(black_box(&key_bytes), black_box(&msg)));
            });
            let cached_key_ns = time_ns_per_op(n, || {
                black_box(cached.mac(black_box(&msg)));
            });
            let scalar_ns = time_ns_per_op(n, || {
                black_box(scalar_key.mac(black_box(&msg)));
            });
            let multiblock_ns = time_ns_per_op(n, || {
                black_box(multiblock_key.mac(black_box(&msg)));
            });
            // The batch path amortizes one schedule expansion over 8 keys
            // and runs their rounds lane-parallel; report per-MAC cost.
            let simd_batch8_per_mac_ns = time_ns_per_op(n, || {
                let schedule =
                    MacSchedule::new_with_backend(CompressBackend::Simd, black_box(&msg));
                black_box(schedule.mac_batch(black_box(&batch_refs)));
            }) / batch_refs.len() as f64;
            HmacRow {
                payload_bytes: size,
                one_shot_ns,
                cached_key_ns,
                speedup: one_shot_ns / cached_key_ns,
                scalar_ns,
                multiblock_ns,
                simd_batch8_per_mac_ns,
                scalar_mb_per_s: mb_per_s(size, scalar_ns),
                multiblock_mb_per_s: mb_per_s(size, multiblock_ns),
                simd_batch8_mb_per_s: mb_per_s(size, simd_batch8_per_mac_ns),
            }
        })
        .collect()
}

/// Measures `Signature::verify_batch_uncached` across an authenticator
/// vector: `batch` distinct signers over the same payload.  Uncached, so the
/// memo cannot flatten the curve; what should flatten it is schedule sharing
/// plus lane-parallel rounds.
fn bench_verify_batch(iters: u64) -> Vec<VerifyBatchRow> {
    let mut rng = DetRng::new(17);
    let signers: Vec<ProcessId> = (0..16).map(ProcessId).collect();
    let (keys, dir) = provision(signers.clone(), &mut rng);
    let mut rows = Vec::new();
    for &size in &[1024usize, 10240] {
        let msg: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let sigs: Vec<Signature> = signers
            .iter()
            .map(|p| Signature::sign(&keys[&SignerId(*p)], &msg))
            .collect();
        for &batch in &[1usize, 2, 4, 8, 16] {
            let refs: Vec<&Signature> = sigs[..batch].iter().collect();
            let n = scaled_iters(iters, size * batch);
            let total_ns = time_ns_per_op(n, || {
                Signature::verify_batch_uncached(black_box(&refs), &dir, black_box(&msg))
                    .expect("valid batch");
            });
            rows.push(VerifyBatchRow {
                payload_bytes: size,
                batch,
                total_ns,
                per_mac_ns: total_ns / batch as f64,
            });
        }
    }
    rows
}

fn bench_encode(iters: u64) -> Vec<EncodeRow> {
    let mut rng = DetRng::new(7);
    let (mut keys, _dir) = provision([ProcessId(0)], &mut rng);
    let key = keys.remove(&SignerId(ProcessId(0))).unwrap();
    PAYLOAD_SIZES
        .iter()
        .map(|&size| {
            let payload = Bytes::from(vec![0x5au8; size]);
            let frame = FsoInbound::Pair(PairMessage::Candidate {
                output_seq: 42,
                dest: Endpoint::Broadcast,
                bytes: payload,
                signature: Signature::sign(&key, b"bench"),
            });
            let frame_bytes = frame.to_wire().len();
            let n = scaled_iters(iters, size);
            let to_wire_ns = time_ns_per_op(n, || {
                black_box(black_box(&frame).to_wire());
            });
            let to_wire_vec_ns = time_ns_per_op(n, || {
                black_box(black_box(&frame).to_wire_vec());
            });
            EncodeRow {
                payload_bytes: size,
                frame_bytes,
                to_wire_ns,
                to_wire_vec_ns,
            }
        })
        .collect()
}

fn bench_sign_verify(iters: u64) -> Vec<SignVerifyRow> {
    let mut rng = DetRng::new(11);
    let a_id = ProcessId(0);
    let b_id = ProcessId(1);
    let (mut keys, dir) = provision([a_id, b_id], &mut rng);
    let a = keys.remove(&SignerId(a_id)).unwrap();
    let b = keys.remove(&SignerId(b_id)).unwrap();
    let fs = FsId(1);

    PAYLOAD_SIZES
        .iter()
        .map(|&size| {
            let content = FsContent::Output {
                output_seq: 7,
                dest: Endpoint::LocalApp,
                bytes: Bytes::from(vec![0x33u8; size]),
            };
            let n = scaled_iters(iters, size);
            let sign_double_ns = time_ns_per_op(n, || {
                black_box(FsOutput::sign(fs, black_box(content.clone()), &a, &b));
            });
            let output = FsOutput::sign(fs, content.clone(), &a, &b);
            let wire_round_trip_ns = time_ns_per_op(n, || {
                let wire = black_box(&output).to_wire();
                black_box(FsOutput::from_wire(&wire).expect("round trip"));
            });
            let content_bytes = signing_bytes(fs, &content);
            let pair = (a.signer, b.signer);
            let verify_ns = time_ns_per_op(n, || {
                black_box(&output)
                    .verify_with_uncached(&dir, &content_bytes, pair)
                    .expect("valid");
            });
            let verify_memo_ns = time_ns_per_op(n, || {
                black_box(&output)
                    .verify_with(&dir, &content_bytes, pair)
                    .expect("valid");
            });
            SignVerifyRow {
                payload_bytes: size,
                sign_double_ns,
                wire_round_trip_ns,
                verify_ns,
                verify_memo_ns,
            }
        })
        .collect()
}

/// One scheduler event for the hold-model benchmark: ordered by
/// `(time, seq)` exactly like the simulator's queued events.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct HoldEvent {
    at: SimTime,
    seq: u64,
}

impl ScheduledEvent for HoldEvent {
    fn at(&self) -> SimTime {
        self.at
    }
}

/// Times the classic hold operation (pop the minimum event, push a successor
/// a random distance in the future) at a steady queue population — the
/// standard way to compare pending-event-set implementations.
fn bench_scheduler(iters: u64) -> Vec<SchedulerRow> {
    let hold_ns = |kind: SchedulerKind, pending: usize, iters: u64| -> f64 {
        let mut queue = EventQueue::new(kind);
        let mut rng = DetRng::new(0x5ced);
        let mut seq = 0u64;
        for _ in 0..pending {
            seq += 1;
            queue.push(HoldEvent {
                at: SimTime::from_nanos(rng.below(1_000_000_000)),
                seq,
            });
        }
        // Warm up past the initial window construction so the timed section
        // measures the steady-state hold cost.
        for _ in 0..(iters / 4).max(1_000) {
            let event = queue.pop().expect("queue stays populated");
            seq += 1;
            queue.push(HoldEvent {
                at: event.at + fs_common::time::SimDuration::from_nanos(rng.below(2_000_000) + 1),
                seq,
            });
        }
        let start = Instant::now();
        for _ in 0..iters {
            let event = queue.pop().expect("queue stays populated");
            seq += 1;
            queue.push(HoldEvent {
                at: event.at + fs_common::time::SimDuration::from_nanos(rng.below(2_000_000) + 1),
                seq,
            });
            black_box(event);
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    [1_000usize, 100_000]
        .iter()
        .map(|&pending| {
            let n = iters.max(1_000);
            let legacy = hold_ns(SchedulerKind::LegacyHeap, pending, n);
            let calendar = hold_ns(SchedulerKind::CalendarQueue, pending, n);
            SchedulerRow {
                pending_events: pending,
                legacy_heap_hold_ns: legacy,
                calendar_hold_ns: calendar,
                speedup: legacy / calendar,
            }
        })
        .collect()
}

/// Compares the pre-refactor `BTreeMap` actor table against the dense slab
/// index on a uniformly random lookup workload.
fn bench_actor_lookup(iters: u64) -> Vec<ActorLookupRow> {
    [16usize, 1_024]
        .iter()
        .map(|&actors| {
            let map: BTreeMap<ProcessId, u32> =
                (0..actors as u32).map(|i| (ProcessId(i), i)).collect();
            let slab: Vec<u32> = (0..actors as u32).collect();
            let mut rng = DetRng::new(9);
            let ids: Vec<ProcessId> = (0..1024)
                .map(|_| ProcessId(rng.below(actors as u64) as u32))
                .collect();
            let n = iters.max(1_000);
            let mut cursor = 0usize;
            let btreemap_lookup_ns = time_ns_per_op(n, || {
                cursor = (cursor + 1) % ids.len();
                black_box(map.get(&ids[cursor]).copied());
            });
            let slab_lookup_ns = time_ns_per_op(n, || {
                cursor = (cursor + 1) % ids.len();
                black_box(slab.get(ids[cursor].0 as usize).copied());
            });
            ActorLookupRow {
                actors,
                btreemap_lookup_ns,
                slab_lookup_ns,
                speedup: btreemap_lookup_ns / slab_lookup_ns,
            }
        })
        .collect()
}

fn bench_pipeline(members: u32, messages_per_member: u64, batch_max: u32) -> PipelineReport {
    let mut traffic = TrafficConfig::paper_default().with_messages(messages_per_member);
    if batch_max > 1 {
        // A generous linger keeps batch close size-driven: every full batch
        // holds exactly `batch_max` requests, only each member's final
        // remainder flushes on the timer.
        traffic = traffic.with_batching(batch_max, fs_common::time::SimDuration::from_secs(1));
    }
    let params = DeploymentParams::paper(members)
        .with_traffic(traffic)
        .with_seed(2003);
    assert_eq!(params.scheduler, SchedulerKind::CalendarQueue);
    let mut deployment = Deployment::from_running(params.scenario(Protocol::FailSignal).build());
    // Run far past the workload's simulated duration so the pipeline drains.
    let start = Instant::now();
    deployment.run(SimTime::from_secs(3600));
    let host_elapsed = start.elapsed();

    let total_deliveries: u64 = (0..members)
        .map(|i| deployment.app(i).delivered_total())
        .sum();
    let sim_events = deployment.sim.stats().events_processed;
    let host_secs = host_elapsed.as_secs_f64().max(f64::EPSILON);
    PipelineReport {
        members,
        messages_per_member,
        batch_max,
        total_deliveries,
        sim_events,
        host_elapsed_ms: host_secs * 1e3,
        deliveries_per_host_sec: total_deliveries as f64 / host_secs,
        host_us_per_delivery: host_secs * 1e6 / total_deliveries.max(1) as f64,
        host_us_per_sim_event: host_secs * 1e6 / sim_events.max(1) as f64,
    }
}

/// Hammers the threaded runtime's cross-node send path: `pairs` ping/echo
/// actor pairs, each pair on its own two nodes, exchange `rounds` round
/// trips concurrently.  Fault-free deployments never materialise the link
/// gate, so the `gated` variant schedules a harmless heal on an unused node
/// pair — that alone forces every cross-node send through the
/// snapshot-published gate, without perturbing any live link.
fn bench_send_contention(pairs: u32, rounds: u64, gated: bool) -> ContentionRow {
    struct Contender {
        peer: Option<ProcessId>,
        rounds_left: u64,
    }
    impl Actor for Contender {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            if let Some(peer) = self.peer {
                ctx.send(peer, b"ping"[..].into());
            }
        }
        fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, _payload: Bytes) {
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                ctx.send(from, b"pong"[..].into());
            }
        }
    }

    let mut builder = ThreadedBuilder::new(ThreadedConfig::default());
    if gated {
        builder = builder.with_link_schedule(LinkSchedule::new().then(
            SimTime::ZERO,
            LinkScope::Pair {
                a: NodeId(2 * pairs),
                b: NodeId(2 * pairs + 1),
            },
            LinkFault::Heal,
        ));
    }
    for _ in 0..pairs {
        let node_a = builder.add_node();
        let node_b = builder.add_node();
        let a_id = builder.next_process_id();
        let b_id = ProcessId(a_id.0 + 1);
        builder.add_on(
            node_a,
            Box::new(Contender {
                peer: Some(b_id),
                rounds_left: rounds,
            }),
        );
        builder.add_on(
            node_b,
            Box::new(Contender {
                peer: None,
                rounds_left: rounds,
            }),
        );
    }

    let start = Instant::now();
    let rt = builder.start();
    rt.run_until_settled(SimTime::from_secs(120));
    let host_elapsed = start.elapsed();
    let stats = rt.net_stats();
    rt.shutdown();

    let sends = stats.messages_sent;
    assert!(
        sends >= 2 * u64::from(pairs) * rounds,
        "every scheduled round trip must have run before settling"
    );
    let host_secs = host_elapsed.as_secs_f64().max(f64::EPSILON);
    ContentionRow {
        gated,
        node_pairs: pairs,
        rounds_per_pair: rounds,
        cross_node_sends: sends,
        host_elapsed_ms: host_secs * 1e3,
        sends_per_host_sec: sends as f64 / host_secs,
        gate_wait_p99_ns: stats.gate_wait.percentile(0.99).map_or(0, |d| d.as_nanos()),
    }
}

/// Sanity-check the FS-NewTOP pipeline end to end before trusting the
/// numbers: every member must see every message, double-signed and verified.
fn check_pipeline_correctness() {
    let mut rng = DetRng::new(3);
    let (mut keys, dir) = provision([ProcessId(0), ProcessId(1)], &mut rng);
    let a = keys.remove(&SignerId(ProcessId(0))).unwrap();
    let b = keys.remove(&SignerId(ProcessId(1))).unwrap();
    let output = FsOutput::sign(
        FsId(1),
        FsContent::Output {
            output_seq: 0,
            dest: Endpoint::LocalApp,
            bytes: Bytes::from(&b"probe"[..]),
        },
        &a,
        &b,
    );
    let mut receiver = FsReceiver::new(dir);
    receiver.register_source(FsId(1), (a.signer, b.signer));
    let wire = FsoInbound::External(output).to_wire();
    assert!(
        receiver.accept(&wire).is_some(),
        "sign → encode → decode → verify round trip must accept"
    );
}

/// The subset of a reference report the regression guard needs (unknown
/// fields in the JSON are ignored by the deserializer, so old and new report
/// layouts both parse).
#[derive(Debug, Deserialize)]
struct ReferencePipeline {
    deliveries_per_host_sec: f64,
}

#[derive(Debug, Deserialize)]
struct ReferenceReport {
    pipeline: ReferencePipeline,
}

/// A reference report that also carries the batched-pipeline row.  Reports
/// written before that row existed parse as plain [`ReferenceReport`]
/// instead, and the batched guard simply does not fire against them.
#[derive(Debug, Deserialize)]
struct ReferenceReportBatched {
    pipeline: ReferencePipeline,
    pipeline_batched: ReferencePipeline,
}

/// The verify-batch subset of a reference row the guard needs.
#[derive(Debug, Deserialize)]
struct ReferenceVerifyBatchRow {
    payload_bytes: usize,
    batch: usize,
    per_mac_ns: f64,
}

/// A reference report that also carries the batched-verification sweep.
/// Older references without it fall back to the layers below, and the
/// verify-batch guard simply does not fire against them.
#[derive(Debug, Deserialize)]
struct ReferenceReportVerifyBatch {
    pipeline: ReferencePipeline,
    pipeline_batched: ReferencePipeline,
    verify_batch: Vec<ReferenceVerifyBatchRow>,
}

/// The contention subset of a reference row the guard needs.
#[derive(Debug, Deserialize)]
struct ReferenceContentionRow {
    gated: bool,
    sends_per_host_sec: f64,
}

/// A reference report that also carries the threaded send-contention rows.
/// Older references without them fall back to the layers below, and the
/// contention guard simply does not fire against them.
#[derive(Debug, Deserialize)]
struct ReferenceReportContention {
    pipeline: ReferencePipeline,
    pipeline_batched: ReferencePipeline,
    verify_batch: Vec<ReferenceVerifyBatchRow>,
    send_contention: Vec<ReferenceContentionRow>,
}

/// The reference numbers the regression guard compares against.
#[derive(Debug, Clone, Copy)]
struct RegressionReference {
    unbatched: f64,
    batched: Option<f64>,
    /// `(payload_bytes, batch, per_mac_ns)` of the largest-batch,
    /// largest-payload batched-verification row.
    verify_batch: Option<(usize, usize, f64)>,
    /// Gated-row sends/host-sec of the send-contention section.
    contention_gated: Option<f64>,
}

/// Extracts the guard references from a reference report, newest layout
/// first — every older layout still parses, it just arms fewer guards.
fn reference_deliveries_per_sec(json: &str) -> Option<RegressionReference> {
    if let Ok(r) = serde_json::from_str::<ReferenceReportContention>(json) {
        let vb = r
            .verify_batch
            .iter()
            .max_by_key(|row| (row.payload_bytes, row.batch))
            .map(|row| (row.payload_bytes, row.batch, row.per_mac_ns));
        return Some(RegressionReference {
            unbatched: r.pipeline.deliveries_per_host_sec,
            batched: Some(r.pipeline_batched.deliveries_per_host_sec),
            verify_batch: vb,
            contention_gated: r
                .send_contention
                .iter()
                .find(|row| row.gated)
                .map(|row| row.sends_per_host_sec),
        });
    }
    if let Ok(r) = serde_json::from_str::<ReferenceReportVerifyBatch>(json) {
        let vb = r
            .verify_batch
            .iter()
            .max_by_key(|row| (row.payload_bytes, row.batch))
            .map(|row| (row.payload_bytes, row.batch, row.per_mac_ns));
        return Some(RegressionReference {
            unbatched: r.pipeline.deliveries_per_host_sec,
            batched: Some(r.pipeline_batched.deliveries_per_host_sec),
            verify_batch: vb,
            contention_gated: None,
        });
    }
    if let Ok(r) = serde_json::from_str::<ReferenceReportBatched>(json) {
        return Some(RegressionReference {
            unbatched: r.pipeline.deliveries_per_host_sec,
            batched: Some(r.pipeline_batched.deliveries_per_host_sec),
            verify_batch: None,
            contention_gated: None,
        });
    }
    serde_json::from_str::<ReferenceReport>(json)
        .ok()
        .map(|r| RegressionReference {
            unbatched: r.pipeline.deliveries_per_host_sec,
            batched: None,
            verify_batch: None,
            contention_gated: None,
        })
}

/// Loads the regression-guard reference **before any benchmarking runs**:
/// `FS_BENCH_HOTPATH_REF` normally points at the committed
/// `results/bench-hotpath.json`, which this very run overwrites later, so
/// the reference number must be captured up front (comparing the fresh
/// report to itself would make the guard vacuous).  Exits 3 when the
/// reference is configured but unreadable.
fn load_regression_reference() -> Option<RegressionReference> {
    let ref_path = std::env::var("FS_BENCH_HOTPATH_REF").ok()?;
    let json = match std::fs::read_to_string(&ref_path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("regression guard: cannot read {ref_path}: {e}");
            std::process::exit(3);
        }
    };
    match reference_deliveries_per_sec(&json) {
        Some(reference) => Some(reference),
        None => {
            eprintln!("regression guard: no pipeline deliveries_per_host_sec in {ref_path}");
            std::process::exit(3);
        }
    }
}

/// One pipeline row of the regression guard: fails the run when the fresh
/// throughput drops more than the allowed fraction below the committed
/// reference captured at start-up.
fn check_regression(label: &str, fresh: &PipelineReport, reference: f64) {
    let max_regression = env_f64("FS_BENCH_HOTPATH_MAX_REGRESSION", 0.20);
    let floor = reference * (1.0 - max_regression);
    if fresh.deliveries_per_host_sec < floor {
        eprintln!(
            "regression guard [{label}]: pipeline throughput {:.0}/s is more than {:.0}% below \
             the reference {:.0}/s (floor {:.0}/s) — scheduler or receive-path regression",
            fresh.deliveries_per_host_sec,
            max_regression * 100.0,
            reference,
            floor,
        );
        std::process::exit(3);
    }
    eprintln!(
        "regression guard [{label}]: {:.0}/s vs reference {:.0}/s (floor {:.0}/s) — ok",
        fresh.deliveries_per_host_sec, reference, floor
    );
}

fn main() {
    let iters = env_u64("FS_BENCH_HOTPATH_ITERS", 100_000);
    let messages = env_u64("FS_BENCH_HOTPATH_MESSAGES", 100);
    let large_members = env_u64("FS_BENCH_HOTPATH_LARGE_MEMBERS", 9) as u32;
    // Capture the reference before this run overwrites the report file.
    let regression_reference = load_regression_reference();
    check_pipeline_correctness();

    eprintln!("hotpath: hmac ({iters} base iters)...");
    let hmac = bench_hmac(iters);
    eprintln!("hotpath: batched signature verification...");
    let verify_batch = bench_verify_batch(iters / 4);
    eprintln!("hotpath: encode...");
    let encode = bench_encode(iters);
    eprintln!("hotpath: sign/verify...");
    let sign_verify = bench_sign_verify(iters / 4);
    eprintln!("hotpath: scheduler (hold model)...");
    let scheduler = bench_scheduler(iters / 4);
    let actor_lookup = bench_actor_lookup(iters);
    let batch_max = env_u64("FS_BENCH_HOTPATH_BATCH", 8) as u32;
    eprintln!("hotpath: full FS-NewTOP pipeline ({messages} msgs/member)...");
    let pipeline = bench_pipeline(3, messages, 1);
    eprintln!(
        "hotpath: large FS-NewTOP pipeline ({large_members} members, {messages} msgs/member)..."
    );
    let pipeline_large = bench_pipeline(large_members, messages, 1);
    eprintln!("hotpath: batched FS-NewTOP pipeline (batch {batch_max})...");
    let pipeline_batched = bench_pipeline(3, messages, batch_max);
    let contention_pairs = env_u64("FS_BENCH_HOTPATH_CONTENTION_PAIRS", 4) as u32;
    let contention_rounds = env_u64("FS_BENCH_HOTPATH_CONTENTION_ROUNDS", 1_000);
    eprintln!(
        "hotpath: threaded send contention ({contention_pairs} pairs \u{d7} \
         {contention_rounds} rounds)..."
    );
    let send_contention = vec![
        bench_send_contention(contention_pairs, contention_rounds, false),
        bench_send_contention(contention_pairs, contention_rounds, true),
    ];

    println!(
        "{:<16} {:>14} {:>14} {:>9}",
        "hmac payload", "one-shot ns", "cached ns", "speedup"
    );
    for row in &hmac {
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>8.2}x",
            row.payload_bytes, row.one_shot_ns, row.cached_key_ns, row.speedup
        );
    }
    println!(
        "\n{:<16} {:>13} {:>13} {:>16}",
        "hmac backends", "scalar MB/s", "multi MB/s", "simd-b8 MB/s"
    );
    for row in &hmac {
        println!(
            "{:<16} {:>13.0} {:>13.0} {:>16.0}",
            row.payload_bytes,
            row.scalar_mb_per_s,
            row.multiblock_mb_per_s,
            row.simd_batch8_mb_per_s
        );
    }
    println!(
        "\n{:<16} {:>6} {:>14} {:>14}",
        "verify payload", "batch", "total ns", "per-MAC ns"
    );
    for row in &verify_batch {
        println!(
            "{:<16} {:>6} {:>14.0} {:>14.0}",
            row.payload_bytes, row.batch, row.total_ns, row.per_mac_ns
        );
    }
    println!(
        "\n{:<16} {:>12} {:>14} {:>16}",
        "encode payload", "frame B", "to_wire ns", "to_wire_vec ns"
    );
    for row in &encode {
        println!(
            "{:<16} {:>12} {:>14.0} {:>16.0}",
            row.payload_bytes, row.frame_bytes, row.to_wire_ns, row.to_wire_vec_ns
        );
    }
    println!(
        "\n{:<16} {:>14} {:>14} {:>9}",
        "sched pending", "heap hold ns", "calendar ns", "speedup"
    );
    for row in &scheduler {
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>8.2}x",
            row.pending_events, row.legacy_heap_hold_ns, row.calendar_hold_ns, row.speedup
        );
    }
    for row in &actor_lookup {
        println!(
            "actor lookup n={:<6} btreemap {:>6.1} ns  slab {:>6.1} ns  ({:.2}x)",
            row.actors, row.btreemap_lookup_ns, row.slab_lookup_ns, row.speedup
        );
    }
    println!(
        "\npipeline: {} deliveries in {:.1} ms host time ({:.0} deliveries/s, {:.1} us/sim event)",
        pipeline.total_deliveries,
        pipeline.host_elapsed_ms,
        pipeline.deliveries_per_host_sec,
        pipeline.host_us_per_sim_event
    );
    println!(
        "pipeline_large (n={}): {} deliveries in {:.1} ms host time ({:.0} deliveries/s)",
        pipeline_large.members,
        pipeline_large.total_deliveries,
        pipeline_large.host_elapsed_ms,
        pipeline_large.deliveries_per_host_sec,
    );
    println!(
        "pipeline_batched (batch={}): {} deliveries in {:.1} ms host time \
         ({:.0} deliveries/s, {:.2}x unbatched)",
        pipeline_batched.batch_max,
        pipeline_batched.total_deliveries,
        pipeline_batched.host_elapsed_ms,
        pipeline_batched.deliveries_per_host_sec,
        pipeline_batched.deliveries_per_host_sec / pipeline.deliveries_per_host_sec.max(1.0),
    );
    for row in &send_contention {
        println!(
            "send_contention ({}, {} pairs): {} cross-node sends in {:.1} ms \
             ({:.0} sends/s, gate-wait p99 {} ns)",
            if row.gated { "gated" } else { "ungated" },
            row.node_pairs,
            row.cross_node_sends,
            row.host_elapsed_ms,
            row.sends_per_host_sec,
            row.gate_wait_p99_ns,
        );
    }

    let small_speedup = hmac.first().map(|r| r.speedup).unwrap_or(0.0);
    if small_speedup < 1.5 {
        eprintln!(
            "WARNING: cached HMAC key speedup on small payloads is only {small_speedup:.2}x \
             (expected >= 1.5x)"
        );
    }

    let report = HotpathReport {
        id: "bench-hotpath".to_string(),
        iterations: iters,
        hmac,
        verify_batch,
        encode,
        sign_verify,
        scheduler,
        actor_lookup,
        pipeline,
        pipeline_large,
        pipeline_batched,
        send_contention,
    };
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create results dir: {e}");
        std::process::exit(1);
    }
    let path = dir.join("bench-hotpath.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            // A missing report must fail the CI step rather than let the
            // artifact silently disappear from the perf trajectory.
            std::process::exit(1);
        }
    }
    // After the fresh report is on disk (so CI still uploads it), enforce
    // the scheduler regression guard against the reference captured at
    // start-up.
    if let Some(reference) = regression_reference {
        check_regression("unbatched", &report.pipeline, reference.unbatched);
        if let Some(batched) = reference.batched {
            check_regression("batched", &report.pipeline_batched, batched);
        }
        if let Some((payload, batch, ref_per_mac_ns)) = reference.verify_batch {
            check_verify_batch_regression(&report.verify_batch, payload, batch, ref_per_mac_ns);
        }
        if let Some(gated_ref) = reference.contention_gated {
            check_contention_regression(&report.send_contention, gated_ref);
        }
    }
}

/// The time-domain guard for batched verification: the per-MAC cost of the
/// reference's largest (payload, batch) row must not climb more than the
/// allowed fraction *above* the committed reference (inverse of the
/// throughput guards: here smaller is better).
fn check_verify_batch_regression(
    fresh: &[VerifyBatchRow],
    payload: usize,
    batch: usize,
    reference_ns: f64,
) {
    let Some(row) = fresh
        .iter()
        .find(|r| r.payload_bytes == payload && r.batch == batch)
    else {
        eprintln!(
            "regression guard [verify_batch]: fresh report lacks the \
             ({payload} B, batch {batch}) row the reference carries"
        );
        std::process::exit(3);
    };
    let max_regression = env_f64("FS_BENCH_HOTPATH_MAX_REGRESSION", 0.20);
    let ceiling = reference_ns * (1.0 + max_regression);
    if row.per_mac_ns > ceiling {
        eprintln!(
            "regression guard [verify_batch]: {payload} B batch-{batch} per-MAC cost \
             {:.0} ns is more than {:.0}% above the reference {:.0} ns (ceiling {:.0} ns) \
             — batch-verify or backend regression",
            row.per_mac_ns,
            max_regression * 100.0,
            reference_ns,
            ceiling,
        );
        std::process::exit(3);
    }
    eprintln!(
        "regression guard [verify_batch]: {:.0} ns/MAC vs reference {:.0} ns (ceiling {:.0} ns) — ok",
        row.per_mac_ns, reference_ns, ceiling
    );
}

/// The contended-send-path guard: the gated row's sends/host-sec must not
/// fall more than the allowed fraction below the committed reference — a
/// drop here means the snapshot gate (or the node wakeup path under it)
/// got more expensive under contention.
fn check_contention_regression(fresh: &[ContentionRow], reference: f64) {
    let Some(row) = fresh.iter().find(|r| r.gated) else {
        eprintln!("regression guard [send_contention]: fresh report lacks the gated row");
        std::process::exit(3);
    };
    let max_regression = env_f64("FS_BENCH_HOTPATH_MAX_REGRESSION", 0.20);
    let floor = reference * (1.0 - max_regression);
    if row.sends_per_host_sec < floor {
        eprintln!(
            "regression guard [send_contention]: gated send path moved {:.0} sends/s, more \
             than {:.0}% below the reference {:.0}/s (floor {:.0}/s) — link-gate or \
             send-path contention regression",
            row.sends_per_host_sec,
            max_regression * 100.0,
            reference,
            floor,
        );
        std::process::exit(3);
    }
    eprintln!(
        "regression guard [send_contention]: {:.0} sends/s vs reference {:.0}/s (floor {:.0}/s) — ok",
        row.sends_per_host_sec, reference, floor
    );
}
