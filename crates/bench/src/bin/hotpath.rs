//! Host-side hot-path benchmark: wall-clock cost of the authenticated wire
//! path on the machine actually running the suite.
//!
//! The simulator charges *simulated* 2003-era costs to reproduce the paper's
//! figures; this binary measures what the host itself pays for the same
//! steps — encode, sign, deliver, verify — and records the numbers in
//! `results/bench-hotpath.json` so every PR leaves a perf trajectory behind.
//!
//! Four sections:
//!
//! * **hmac** — one-shot `HmacSha256::mac` (re-expands the RFC 2104 key
//!   schedule per message) vs the cached [`HmacKey`] state that
//!   `SigningKey` now holds.  The cached path must stay measurably faster
//!   (≥ 1.5× on small payloads).
//! * **encode** — `Wire::to_wire` (one sized allocation, refcount-shared
//!   `Bytes`) vs the legacy `Wire::to_wire_vec` growth-from-zero path, on
//!   the candidate frames the wrapper pair exchanges.
//! * **sign_verify** — the full double-signature round: build an
//!   [`FsOutput`], wire round-trip it, verify it at a destination.
//! * **pipeline** — a complete 3-member FS-NewTOP deployment (interceptors,
//!   wrapper pairs, NewTOP GC) driven to quiescence on the discrete-event
//!   simulator; host wall-clock per ordered delivery and per simulated
//!   event.
//!
//! `FS_BENCH_HOTPATH_ITERS` scales the micro-benchmark iteration counts
//! (default 100 000); `FS_BENCH_HOTPATH_MESSAGES` the per-member pipeline
//! message count (default 100).  CI runs both small.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;

use failsignal::message::{signing_bytes, FsContent, FsOutput, FsoInbound, PairMessage};
use failsignal::receiver::FsReceiver;
use fs_bench::report::results_dir;
use fs_common::codec::Wire;
use fs_common::id::{FsId, ProcessId};
use fs_common::rng::DetRng;
use fs_common::time::SimTime;
use fs_common::Bytes;
use fs_crypto::hmac::{HmacKey, HmacSha256};
use fs_crypto::keys::{provision, SignerId};
use fs_crypto::sig::Signature;
use fs_newtop::app::TrafficConfig;
use fs_newtop_bft::deployment::{build_fs_newtop, DeploymentParams};
use fs_smr::machine::Endpoint;

/// Payload sizes exercised by the micro sections: the paper's "0k" 3-byte
/// message, a cache-line-ish frame, 1 kB and the paper's 10 kB maximum.
const PAYLOAD_SIZES: [usize; 4] = [3, 64, 1024, 10240];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Times `op` over `iters` iterations (after a 1/10 warm-up) and returns
/// mean nanoseconds per iteration.
fn time_ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10).max(1) {
        op();
    }
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Scales the iteration budget down for large payloads so the benchmark's
/// wall-clock stays roughly flat across sizes.
fn scaled_iters(base: u64, payload: usize) -> u64 {
    (base / (1 + payload as u64 / 64)).max(100)
}

#[derive(Debug, Serialize)]
struct HmacRow {
    payload_bytes: usize,
    one_shot_ns: f64,
    cached_key_ns: f64,
    /// one_shot_ns / cached_key_ns — the win from precomputing the key
    /// schedule once per signer.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct EncodeRow {
    payload_bytes: usize,
    frame_bytes: usize,
    to_wire_ns: f64,
    to_wire_vec_ns: f64,
}

#[derive(Debug, Serialize)]
struct SignVerifyRow {
    payload_bytes: usize,
    sign_double_ns: f64,
    wire_round_trip_ns: f64,
    verify_ns: f64,
}

#[derive(Debug, Serialize)]
struct PipelineReport {
    members: u32,
    messages_per_member: u64,
    total_deliveries: u64,
    sim_events: u64,
    host_elapsed_ms: f64,
    deliveries_per_host_sec: f64,
    host_us_per_delivery: f64,
    host_us_per_sim_event: f64,
}

#[derive(Debug, Serialize)]
struct HotpathReport {
    id: String,
    iterations: u64,
    hmac: Vec<HmacRow>,
    encode: Vec<EncodeRow>,
    sign_verify: Vec<SignVerifyRow>,
    pipeline: PipelineReport,
}

fn bench_hmac(iters: u64) -> Vec<HmacRow> {
    let key_bytes = [0xa5u8; 32];
    let cached = HmacKey::new(&key_bytes);
    PAYLOAD_SIZES
        .iter()
        .map(|&size| {
            let msg: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let n = scaled_iters(iters, size);
            let one_shot_ns = time_ns_per_op(n, || {
                black_box(HmacSha256::mac(black_box(&key_bytes), black_box(&msg)));
            });
            let cached_key_ns = time_ns_per_op(n, || {
                black_box(cached.mac(black_box(&msg)));
            });
            HmacRow {
                payload_bytes: size,
                one_shot_ns,
                cached_key_ns,
                speedup: one_shot_ns / cached_key_ns,
            }
        })
        .collect()
}

fn bench_encode(iters: u64) -> Vec<EncodeRow> {
    let mut rng = DetRng::new(7);
    let (mut keys, _dir) = provision([ProcessId(0)], &mut rng);
    let key = keys.remove(&SignerId(ProcessId(0))).unwrap();
    PAYLOAD_SIZES
        .iter()
        .map(|&size| {
            let payload = Bytes::from(vec![0x5au8; size]);
            let frame = FsoInbound::Pair(PairMessage::Candidate {
                output_seq: 42,
                dest: Endpoint::Broadcast,
                bytes: payload,
                signature: Signature::sign(&key, b"bench"),
            });
            let frame_bytes = frame.to_wire().len();
            let n = scaled_iters(iters, size);
            let to_wire_ns = time_ns_per_op(n, || {
                black_box(black_box(&frame).to_wire());
            });
            let to_wire_vec_ns = time_ns_per_op(n, || {
                black_box(black_box(&frame).to_wire_vec());
            });
            EncodeRow {
                payload_bytes: size,
                frame_bytes,
                to_wire_ns,
                to_wire_vec_ns,
            }
        })
        .collect()
}

fn bench_sign_verify(iters: u64) -> Vec<SignVerifyRow> {
    let mut rng = DetRng::new(11);
    let a_id = ProcessId(0);
    let b_id = ProcessId(1);
    let (mut keys, dir) = provision([a_id, b_id], &mut rng);
    let a = keys.remove(&SignerId(a_id)).unwrap();
    let b = keys.remove(&SignerId(b_id)).unwrap();
    let fs = FsId(1);

    PAYLOAD_SIZES
        .iter()
        .map(|&size| {
            let content = FsContent::Output {
                output_seq: 7,
                dest: Endpoint::LocalApp,
                bytes: Bytes::from(vec![0x33u8; size]),
            };
            let n = scaled_iters(iters, size);
            let sign_double_ns = time_ns_per_op(n, || {
                black_box(FsOutput::sign(fs, black_box(content.clone()), &a, &b));
            });
            let output = FsOutput::sign(fs, content.clone(), &a, &b);
            let wire_round_trip_ns = time_ns_per_op(n, || {
                let wire = black_box(&output).to_wire();
                black_box(FsOutput::from_wire(&wire).expect("round trip"));
            });
            let content_bytes = signing_bytes(fs, &content);
            let pair = (a.signer, b.signer);
            let verify_ns = time_ns_per_op(n, || {
                black_box(&output)
                    .verify_with(&dir, &content_bytes, pair)
                    .expect("valid");
            });
            SignVerifyRow {
                payload_bytes: size,
                sign_double_ns,
                wire_round_trip_ns,
                verify_ns,
            }
        })
        .collect()
}

fn bench_pipeline(messages_per_member: u64) -> PipelineReport {
    let members = 3u32;
    let traffic = TrafficConfig::paper_default().with_messages(messages_per_member);
    let params = DeploymentParams::paper(members)
        .with_traffic(traffic)
        .with_seed(2003);
    let mut deployment = build_fs_newtop(&params);
    // Run far past the workload's simulated duration so the pipeline drains.
    let start = Instant::now();
    deployment.run(SimTime::from_secs(3600));
    let host_elapsed = start.elapsed();

    let total_deliveries: u64 = (0..members)
        .map(|i| deployment.app(i).delivered_total())
        .sum();
    let sim_events = deployment.sim.stats().events_processed;
    let host_secs = host_elapsed.as_secs_f64().max(f64::EPSILON);
    PipelineReport {
        members,
        messages_per_member,
        total_deliveries,
        sim_events,
        host_elapsed_ms: host_secs * 1e3,
        deliveries_per_host_sec: total_deliveries as f64 / host_secs,
        host_us_per_delivery: host_secs * 1e6 / total_deliveries.max(1) as f64,
        host_us_per_sim_event: host_secs * 1e6 / sim_events.max(1) as f64,
    }
}

/// Sanity-check the FS-NewTOP pipeline end to end before trusting the
/// numbers: every member must see every message, double-signed and verified.
fn check_pipeline_correctness() {
    let mut rng = DetRng::new(3);
    let (mut keys, dir) = provision([ProcessId(0), ProcessId(1)], &mut rng);
    let a = keys.remove(&SignerId(ProcessId(0))).unwrap();
    let b = keys.remove(&SignerId(ProcessId(1))).unwrap();
    let output = FsOutput::sign(
        FsId(1),
        FsContent::Output {
            output_seq: 0,
            dest: Endpoint::LocalApp,
            bytes: Bytes::from(&b"probe"[..]),
        },
        &a,
        &b,
    );
    let mut receiver = FsReceiver::new(dir);
    receiver.register_source(FsId(1), (a.signer, b.signer));
    let wire = FsoInbound::External(output).to_wire();
    assert!(
        receiver.accept(&wire).is_some(),
        "sign → encode → decode → verify round trip must accept"
    );
}

fn main() {
    let iters = env_u64("FS_BENCH_HOTPATH_ITERS", 100_000);
    let messages = env_u64("FS_BENCH_HOTPATH_MESSAGES", 100);
    check_pipeline_correctness();

    eprintln!("hotpath: hmac ({iters} base iters)...");
    let hmac = bench_hmac(iters);
    eprintln!("hotpath: encode...");
    let encode = bench_encode(iters);
    eprintln!("hotpath: sign/verify...");
    let sign_verify = bench_sign_verify(iters / 4);
    eprintln!("hotpath: full FS-NewTOP pipeline ({messages} msgs/member)...");
    let pipeline = bench_pipeline(messages);

    println!(
        "{:<16} {:>14} {:>14} {:>9}",
        "hmac payload", "one-shot ns", "cached ns", "speedup"
    );
    for row in &hmac {
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>8.2}x",
            row.payload_bytes, row.one_shot_ns, row.cached_key_ns, row.speedup
        );
    }
    println!(
        "\n{:<16} {:>12} {:>14} {:>16}",
        "encode payload", "frame B", "to_wire ns", "to_wire_vec ns"
    );
    for row in &encode {
        println!(
            "{:<16} {:>12} {:>14.0} {:>16.0}",
            row.payload_bytes, row.frame_bytes, row.to_wire_ns, row.to_wire_vec_ns
        );
    }
    println!(
        "\npipeline: {} deliveries in {:.1} ms host time ({:.0} deliveries/s, {:.1} us/sim event)",
        pipeline.total_deliveries,
        pipeline.host_elapsed_ms,
        pipeline.deliveries_per_host_sec,
        pipeline.host_us_per_sim_event
    );

    let small_speedup = hmac.first().map(|r| r.speedup).unwrap_or(0.0);
    if small_speedup < 1.5 {
        eprintln!(
            "WARNING: cached HMAC key speedup on small payloads is only {small_speedup:.2}x \
             (expected >= 1.5x)"
        );
    }

    let report = HotpathReport {
        id: "bench-hotpath".to_string(),
        iterations: iters,
        hmac,
        encode,
        sign_verify,
        pipeline,
    };
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create results dir: {e}");
        std::process::exit(1);
    }
    let path = dir.join("bench-hotpath.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            // A missing report must fail the CI step rather than let the
            // artifact silently disappear from the perf trajectory.
            std::process::exit(1);
        }
    }
}
