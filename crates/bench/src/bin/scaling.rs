//! Shard-scaling driver: aggregate throughput vs shard count for the
//! sharded cluster layer (`fs_harness::cluster`).
//!
//! The paper prices the crash → authenticated-Byzantine lift for one
//! replicated group; this sweep measures how that per-group cost composes
//! at deployment scale.  Each cell deploys `shards` independent
//! `SequencedKv` groups on one runtime behind one client router, offers a
//! *fixed per-shard* open-loop Poisson rate (so the aggregate offered rate
//! grows linearly with the shard count), and records the aggregate rate of
//! *ordered deliveries* — completed commands × group size, since every
//! completed command was sequenced and applied at every member of its
//! shard — per host-second (simulated seconds on the sim cells, wall
//! seconds on the threaded cells).  Because every shard owns its own
//! sequencer and nodes, aggregate throughput should rise near-linearly
//! until per-shard capacity, not a shared resource, binds.
//!
//! The whole grid goes to `results/bench-scaling.json`:
//!
//! ```text
//! cells = { crash, fail_signal } × { sim, threaded }
//! curve = one row per shard count (default 1, 2, 4, 8, 16, 24, 32)
//! ```
//!
//! Env knobs (strictly parsed: a set-but-malformed knob aborts, exit 2):
//!
//! * `FS_BENCH_SCALING_MESSAGES` — offered commands per shard (default 400);
//! * `FS_BENCH_SCALING_SHARDS` — comma-separated shard counts (default
//!   `1,2,4,8,16,24,32`);
//! * `FS_BENCH_SCALING_RATE` — offered rate per shard, commands/sec
//!   (default 200);
//! * `FS_BENCH_SCALING_MEMBERS` — members per shard (default 3);
//! * `FS_BENCH_SCALING_BATCH` — request batch size (default 8);
//! * `FS_BENCH_SCALING_THREADED` — `0` skips the threaded cells;
//! * `FS_BENCH_SCALING_REF` — path to a committed reference report: each
//!   fresh (protocol, runtime, shards) row must stay within
//!   `FS_BENCH_SCALING_MAX_REGRESSION` (default 0.20) of the reference
//!   throughput, else the driver exits 3.

use serde::{Deserialize, Serialize};

use fs_bench::env::{env_f64, env_flag, env_u64, env_u64_list};
use fs_bench::report::results_dir;
use fs_common::time::{SimDuration, SimTime};
use fs_harness::{Cluster, Protocol, RuntimeKind, Workload};

fn protocol_name(protocol: Protocol) -> &'static str {
    match protocol {
        Protocol::Crash => "crash",
        Protocol::FailSignal => "fail_signal",
    }
}

fn runtime_name(runtime: RuntimeKind) -> &'static str {
    match runtime {
        RuntimeKind::Sim => "sim",
        RuntimeKind::Threaded => "threaded",
    }
}

fn ms(d: SimDuration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

/// One shard count of one cell's curve.
#[derive(Debug, Serialize)]
struct ShardPoint {
    shards: u32,
    /// Commands offered across the cluster (per-shard budget × shards).
    offered: u64,
    /// Commands routed, completed, and still in flight at the horizon.
    submitted: u64,
    completed: u64,
    in_flight: u64,
    /// Host-seconds between the first routed command and the last
    /// completion.
    elapsed_host_sec: f64,
    /// Aggregate ordered deliveries (completed × members per shard) per
    /// host-second — the scaling-curve metric.
    deliveries_per_host_sec: f64,
    /// Completed commands per host-second.
    completed_per_host_sec: f64,
    /// Load balance across shards: the smallest and largest per-shard
    /// completion counts.
    min_shard_completed: u64,
    max_shard_completed: u64,
    /// End-to-end ordering latency over every completed command.
    latency_ms_p50: f64,
    latency_ms_p99: f64,
    latency_samples: usize,
}

/// One protocol × runtime cell: a full shard-count sweep.
#[derive(Debug, Serialize)]
struct Cell {
    protocol: String,
    runtime: String,
    /// Throughput of the largest shard count over the single-shard
    /// baseline.
    speedup_max_over_one: f64,
    curve: Vec<ShardPoint>,
}

#[derive(Debug, Serialize)]
struct ScalingReport {
    id: String,
    members_per_shard: u32,
    messages_per_shard: u64,
    rate_per_shard: f64,
    batch_max: u32,
    cells: Vec<Cell>,
}

fn run_point(
    protocol: Protocol,
    runtime: RuntimeKind,
    shards: u32,
    members: u32,
    per_shard_messages: u64,
    per_shard_rate: f64,
    batch_max: u32,
) -> ShardPoint {
    // Fixed per-shard offered rate: the aggregate arrival gap shrinks as
    // the shard count grows.
    let aggregate_rate = per_shard_rate * f64::from(shards);
    let interval = SimDuration::from_nanos((1e9 / aggregate_rate).max(1.0) as u64);
    let messages = per_shard_messages * u64::from(shards);
    let workload = Workload::paper_default()
        .messages(messages)
        .interval(interval)
        .poisson()
        .batch_max(batch_max)
        .batch_linger(SimDuration::from_millis(2));
    let mut cluster = Cluster::new(shards, members)
        .protocol(protocol)
        .runtime(runtime)
        .workload(workload)
        .seed(2003)
        .build();
    // The offered window is independent of the shard count (per-shard
    // budget ÷ per-shard rate); the threaded horizon adds settling room and
    // the sim one is effectively "until quiescent".
    let offered_window = interval * messages;
    let horizon = match runtime {
        RuntimeKind::Sim => SimTime::from_secs(3600),
        RuntimeKind::Threaded => SimTime::ZERO + offered_window + SimDuration::from_secs(4),
    };
    cluster.run_until(horizon);

    let summary = cluster.latency_summary();
    let (p50, p99, samples) = match &summary {
        Some(s) => (ms(s.p50), ms(s.p99), s.count),
        None => (0.0, 0.0, 0),
    };
    let loads = cluster.shard_loads();
    let completed = cluster.completed();
    let router = cluster.router();
    let submitted = router.submitted();
    let elapsed = match (router.first_submit_at(), router.last_done_at()) {
        (Some(first), Some(last)) if last > first => {
            last.duration_since(first).as_nanos() as f64 / 1e9
        }
        _ => 0.0,
    };
    let per_sec = |n: u64| {
        if elapsed > 0.0 {
            n as f64 / elapsed
        } else {
            0.0
        }
    };
    ShardPoint {
        shards,
        offered: router.offered(),
        submitted,
        completed,
        in_flight: submitted - completed,
        elapsed_host_sec: elapsed,
        deliveries_per_host_sec: per_sec(completed * u64::from(members)),
        completed_per_host_sec: per_sec(completed),
        min_shard_completed: loads.iter().map(|l| l.completed).min().unwrap_or(0),
        max_shard_completed: loads.iter().map(|l| l.completed).max().unwrap_or(0),
        latency_ms_p50: p50,
        latency_ms_p99: p99,
        latency_samples: samples,
    }
}

// ---------------------------------------------------------------------------
// Regression guard (same pattern as the hotpath bench: the committed
// reference is captured before this run overwrites the report file).
// ---------------------------------------------------------------------------

#[derive(Debug, Deserialize)]
struct ReferencePoint {
    shards: u32,
    deliveries_per_host_sec: f64,
}

#[derive(Debug, Deserialize)]
struct ReferenceCell {
    protocol: String,
    runtime: String,
    curve: Vec<ReferencePoint>,
}

#[derive(Debug, Deserialize)]
struct ReferenceReport {
    cells: Vec<ReferenceCell>,
}

/// Loads the committed reference when `FS_BENCH_SCALING_REF` is set.
/// Exits 3 when the reference is configured but unreadable — a missing
/// reference would make the guard vacuous.
fn load_reference() -> Option<ReferenceReport> {
    let ref_path = std::env::var("FS_BENCH_SCALING_REF").ok()?;
    let json = match std::fs::read_to_string(&ref_path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("regression guard: cannot read {ref_path}: {e}");
            std::process::exit(3);
        }
    };
    match serde_json::from_str(&json) {
        Ok(report) => Some(report),
        Err(e) => {
            eprintln!("regression guard: cannot parse {ref_path}: {e}");
            std::process::exit(3);
        }
    }
}

/// Fails (exit 3) when any fresh (protocol, runtime, shards) row falls more
/// than the allowed fraction below its reference throughput.  Reference
/// rows with no fresh counterpart (and vice versa) guard nothing.
fn check_regression(reference: &ReferenceReport, cells: &[Cell], max_regression: f64) {
    let mut breaches = 0u32;
    for ref_cell in &reference.cells {
        let Some(cell) = cells
            .iter()
            .find(|c| c.protocol == ref_cell.protocol && c.runtime == ref_cell.runtime)
        else {
            continue;
        };
        for ref_point in &ref_cell.curve {
            let Some(point) = cell.curve.iter().find(|p| p.shards == ref_point.shards) else {
                continue;
            };
            let floor = ref_point.deliveries_per_host_sec * (1.0 - max_regression);
            if point.deliveries_per_host_sec < floor {
                eprintln!(
                    "regression guard [{}/{} shards={}]: {:.0} deliveries/host-sec is more than \
                     {:.0}% below the reference {:.0}",
                    cell.protocol,
                    cell.runtime,
                    ref_point.shards,
                    point.deliveries_per_host_sec,
                    max_regression * 100.0,
                    ref_point.deliveries_per_host_sec,
                );
                breaches += 1;
            }
        }
    }
    if breaches > 0 {
        eprintln!("regression guard: {breaches} row(s) regressed");
        std::process::exit(3);
    }
    eprintln!("regression guard: ok");
}

fn main() {
    let per_shard_messages = env_u64("FS_BENCH_SCALING_MESSAGES", 400);
    let shard_counts = env_u64_list("FS_BENCH_SCALING_SHARDS", &[1, 2, 4, 8, 16, 24, 32]);
    let per_shard_rate = env_f64("FS_BENCH_SCALING_RATE", 200.0);
    let members = env_u64("FS_BENCH_SCALING_MEMBERS", 3) as u32;
    let batch_max = env_u64("FS_BENCH_SCALING_BATCH", 8) as u32;
    let threaded = env_flag("FS_BENCH_SCALING_THREADED", true);
    let max_regression = env_f64("FS_BENCH_SCALING_MAX_REGRESSION", 0.20);
    // Capture the reference before this run overwrites the report file.
    let reference = load_reference();

    let mut runtimes = vec![RuntimeKind::Sim];
    if threaded {
        runtimes.push(RuntimeKind::Threaded);
    }

    let mut cells = Vec::new();
    for protocol in [Protocol::Crash, Protocol::FailSignal] {
        for &runtime in &runtimes {
            eprintln!(
                "scaling: {}/{} ({} shard counts, {per_shard_rate}/s per shard)...",
                protocol_name(protocol),
                runtime_name(runtime),
                shard_counts.len(),
            );
            let curve: Vec<ShardPoint> = shard_counts
                .iter()
                .map(|&shards| {
                    let point = run_point(
                        protocol,
                        runtime,
                        shards as u32,
                        members,
                        per_shard_messages,
                        per_shard_rate,
                        batch_max,
                    );
                    eprintln!(
                        "  shards {:>3}  {:>9.0} deliveries/host-sec  p50 {:>7.2} ms  \
                         p99 {:>7.2} ms  completed {}/{}",
                        shards,
                        point.deliveries_per_host_sec,
                        point.latency_ms_p50,
                        point.latency_ms_p99,
                        point.completed,
                        point.offered,
                    );
                    point
                })
                .collect();
            let baseline = curve
                .first()
                .map(|p| p.deliveries_per_host_sec)
                .unwrap_or(0.0);
            let peak = curve
                .last()
                .map(|p| p.deliveries_per_host_sec)
                .unwrap_or(0.0);
            cells.push(Cell {
                protocol: protocol_name(protocol).to_string(),
                runtime: runtime_name(runtime).to_string(),
                speedup_max_over_one: if baseline > 0.0 { peak / baseline } else { 0.0 },
                curve,
            });
        }
    }

    if let Some(reference) = &reference {
        check_regression(reference, &cells, max_regression);
    }

    let report = ScalingReport {
        id: "bench-scaling".to_string(),
        members_per_shard: members,
        messages_per_shard: per_shard_messages,
        rate_per_shard: per_shard_rate,
        batch_max,
        cells,
    };
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create results dir: {e}");
        std::process::exit(1);
    }
    let path = dir.join("bench-scaling.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
