//! Ablation A2: false suspicions and group splitting.  Crash-tolerant NewTOP
//! with an aggressive timeout-based suspector splits the group even though no
//! process has failed; FS-NewTOP, whose suspicions come only from
//! fail-signals, never does.

use fs_bench::experiment::{ablation_false_suspicion, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::default();
    let (newtop_views, fs_views) = ablation_false_suspicion(&config);
    println!("# ablation A2 — false suspicions in a failure-free run");
    println!("view changes observed by applications (sum over members):");
    println!("  NewTOP   (aggressive timeout suspector): {newtop_views}");
    println!("  FS-NewTOP (fail-signal driven suspector): {fs_views}");
}
