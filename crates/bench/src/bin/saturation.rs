//! Open-loop saturation driver: throughput–latency curves for the crash and
//! fail-signal protocols on both runtimes.
//!
//! Each cell of the sweep drives a 3-member NewTOP deployment with an
//! *open-loop* Poisson arrival process (arrivals keep coming whether or not
//! earlier requests completed — the load shape that actually exposes
//! saturation, unlike a closed loop whose offered rate collapses with
//! latency).  Per offered rate the driver records the delivery-latency
//! percentiles (p50/p95/p99/p999), the admission-control accounting
//! (offered/submitted/shed/completed) and the network statistics, then
//! writes the whole grid to `results/bench-saturation.json`:
//!
//! ```text
//! cells = { crash, fail_signal } × { sim, threaded }
//! curve = one row per offered rate, to (and past) saturation
//! ```
//!
//! The per-client in-flight bound (admission control) is deliberately
//! engaged, so past the knee the curves show *shedding* rising instead of
//! latency growing without bound — the backpressure half of the load plane.
//!
//! Note on the simulator cells: the sim charges dispatch and crypto costs to
//! a per-node CPU pool, so the load generator itself competes with protocol
//! processing for host CPU (the paper's single-CPU-host world).  Offered
//! arrivals therefore cannot outrun the host; the in-flight bound is kept
//! small so the admission gate binds *below* that ceiling and overload shows
//! up as shed counts rather than as a silently throttled arrival process.
//!
//! Env knobs (CI runs everything small):
//!
//! * `FS_BENCH_SATURATION_MESSAGES` — offered arrivals per member per rate
//!   point (default 200);
//! * `FS_BENCH_SATURATION_RATES` — comma-separated offered rates in
//!   requests/sec per member (default `25,50,100,200,400,800`);
//! * `FS_BENCH_SATURATION_THREADED` — set to `0` to skip the threaded cells
//!   (each threaded point costs real wall-clock seconds);
//! * `FS_BENCH_SATURATION_BATCH` — request batch size (default 1);
//! * `FS_BENCH_SATURATION_FAULTS` — a fault schedule applied to every rate
//!   point, scaled to the offered window: `none` (default), `restart`
//!   (member 2 crashes a quarter into the window and recovers at the half —
//!   the degraded-mode knee of the recovery plane), `loss` (1 % loss on
//!   every inter-member link) or `slow` (+2 ms one-way delay everywhere).

use serde::Serialize;

use fs_bench::env::{env_choice, env_f64_list, env_flag, env_u64};
use fs_bench::report::results_dir;
use fs_common::id::MemberId;
use fs_common::time::{SimDuration, SimTime};
use fs_harness::{
    Admission, FaultSchedule, NewTopService, Protocol, RuntimeKind, Scenario, Workload,
};
use fs_newtop::suspector::SuspectorConfig;

const MEMBERS: u32 = 3;
const CLIENTS: u32 = 2;
const MAX_IN_FLIGHT: u32 = 2;

/// The fault modes `FS_BENCH_SATURATION_FAULTS` accepts.
const FAULT_MODES: [&str; 4] = ["none", "restart", "loss", "slow"];

/// The fault schedule selected by `FS_BENCH_SATURATION_FAULTS`, scaled to
/// one rate point's offered window so the fault always lands mid-load.
/// The mode string is validated in `main` before any point runs.
fn fault_schedule(mode: &str, offered_window: SimDuration) -> FaultSchedule {
    let onset = SimTime::ZERO + offered_window / 4;
    match mode {
        "none" => FaultSchedule::none(),
        "restart" => FaultSchedule::none()
            .crash_member_at(onset, MemberId(MEMBERS - 1))
            .recover_member_at(SimTime::ZERO + offered_window / 2, MemberId(MEMBERS - 1)),
        "loss" => {
            let mut faults = FaultSchedule::none();
            for a in 0..MEMBERS {
                for b in (a + 1)..MEMBERS {
                    faults = faults.lossy_link(onset, MemberId(a), MemberId(b), 0.01);
                }
            }
            faults
        }
        "slow" => {
            let mut faults = FaultSchedule::none();
            for a in 0..MEMBERS {
                for b in (a + 1)..MEMBERS {
                    faults = faults.slow_link(
                        onset,
                        MemberId(a),
                        MemberId(b),
                        SimDuration::from_millis(2),
                        SimDuration::ZERO,
                    );
                }
            }
            faults
        }
        other => unreachable!("mode `{other}` validated against FAULT_MODES at start-up"),
    }
}

/// One rate point of one cell's curve.
#[derive(Debug, Serialize)]
struct RatePoint {
    /// Offered arrival rate per member, requests/sec.
    offered_rate_per_member: f64,
    /// Arrivals offered per member (the configured message budget).
    offered_per_member: u64,
    /// Load accounting summed over all members.
    offered: u64,
    submitted: u64,
    shed: u64,
    completed: u64,
    /// Completed fraction of offered arrivals (1.0 until the admission gate
    /// starts shedding past the knee).
    goodput_ratio: f64,
    /// Delivery-latency percentiles over every member's own completed
    /// requests, in milliseconds of the runtime's clock (simulated for the
    /// sim cells, wall for the threaded cells).
    latency_ms_p50: f64,
    latency_ms_p95: f64,
    latency_ms_p99: f64,
    latency_ms_p999: f64,
    latency_ms_max: f64,
    latency_samples: usize,
    messages_sent: u64,
    messages_delivered: u64,
    /// Messages dropped by the link fault plane (0 without a fault mode).
    dropped_link: u64,
    /// Messages dropped on a crashed process (0 without the `restart` mode).
    dropped_down: u64,
}

/// One protocol × runtime cell: a full offered-rate sweep.
#[derive(Debug, Serialize)]
struct Cell {
    protocol: String,
    runtime: String,
    curve: Vec<RatePoint>,
}

#[derive(Debug, Serialize)]
struct SaturationReport {
    id: String,
    members: u32,
    clients_per_member: u32,
    max_in_flight_per_client: u32,
    batch_max: u32,
    /// The fault mode every rate point ran under (`none`, `restart`, `loss`
    /// or `slow`).
    faults: String,
    cells: Vec<Cell>,
}

fn ms(d: SimDuration) -> f64 {
    d.as_nanos() as f64 / 1e6
}

fn run_point(
    protocol: Protocol,
    runtime: RuntimeKind,
    rate: f64,
    messages: u64,
    batch_max: u32,
    fault_mode: &str,
) -> RatePoint {
    let interval = SimDuration::from_nanos((1e9 / rate).max(1.0) as u64);
    let workload = Workload::paper_default()
        .messages(messages)
        .interval(interval)
        .poisson()
        .clients(CLIENTS)
        .max_in_flight(MAX_IN_FLIGHT)
        .admission(Admission::Shed)
        .batch_max(batch_max)
        .batch_linger(SimDuration::from_millis(2));
    // The offered window is messages × mean interval; the fault schedule is
    // scaled to it, and the threaded horizon leaves generous settling room
    // past it (the sim skips idle time, the threaded runtime exits early at
    // quiescence).
    let offered_window = interval * messages;
    let mut run = Scenario::new(NewTopService::new().suspector(SuspectorConfig::disabled()))
        .members(MEMBERS)
        .protocol(protocol)
        .runtime(runtime)
        .workload(workload)
        .faults(fault_schedule(fault_mode, offered_window))
        .seed(2003)
        .build();
    let horizon = match runtime {
        RuntimeKind::Sim => SimTime::from_secs(3600),
        RuntimeKind::Threaded => SimTime::ZERO + offered_window + SimDuration::from_secs(4),
    };
    run.run_until(horizon);

    let load = run.load_stats();
    let stats = run.stats();
    let summary = run.latency_summary();
    let (p50, p95, p99, p999, max, samples) = match &summary {
        Some(s) => (
            ms(s.p50),
            ms(s.p95),
            ms(s.p99),
            ms(s.p999),
            ms(s.max),
            s.count,
        ),
        None => (0.0, 0.0, 0.0, 0.0, 0.0, 0),
    };
    RatePoint {
        offered_rate_per_member: rate,
        offered_per_member: messages,
        offered: load.offered,
        submitted: load.submitted,
        shed: load.shed,
        completed: load.completed,
        goodput_ratio: load.completed as f64 / (load.offered.max(1)) as f64,
        latency_ms_p50: p50,
        latency_ms_p95: p95,
        latency_ms_p99: p99,
        latency_ms_p999: p999,
        latency_ms_max: max,
        latency_samples: samples,
        messages_sent: stats.messages_sent,
        messages_delivered: stats.messages_delivered,
        dropped_link: stats.dropped_link,
        dropped_down: stats.dropped_down,
    }
}

fn main() {
    let messages = env_u64("FS_BENCH_SATURATION_MESSAGES", 200);
    let batch_max = env_u64("FS_BENCH_SATURATION_BATCH", 1) as u32;
    let threaded = env_flag("FS_BENCH_SATURATION_THREADED", true);
    // Validated up front: an unknown mode aborts before any point runs.
    let fault_mode = env_choice("FS_BENCH_SATURATION_FAULTS", "none", &FAULT_MODES);
    let rates = env_f64_list(
        "FS_BENCH_SATURATION_RATES",
        &[25.0, 50.0, 100.0, 200.0, 400.0, 800.0],
    );

    let mut runtimes = vec![RuntimeKind::Sim];
    if threaded {
        runtimes.push(RuntimeKind::Threaded);
    }

    let mut cells = Vec::new();
    for protocol in [Protocol::Crash, Protocol::FailSignal] {
        for &runtime in &runtimes {
            let protocol_name = match protocol {
                Protocol::Crash => "crash",
                Protocol::FailSignal => "fail_signal",
            };
            let runtime_name = match runtime {
                RuntimeKind::Sim => "sim",
                RuntimeKind::Threaded => "threaded",
            };
            eprintln!(
                "saturation: {protocol_name}/{runtime_name} ({} rates, faults {fault_mode})...",
                rates.len()
            );
            let curve: Vec<RatePoint> = rates
                .iter()
                .map(|&rate| {
                    let point =
                        run_point(protocol, runtime, rate, messages, batch_max, &fault_mode);
                    eprintln!(
                        "  rate {:>6.0}/s  p50 {:>8.2} ms  p99 {:>8.2} ms  p999 {:>8.2} ms  \
                         shed {:>4}  completed {}/{}",
                        rate,
                        point.latency_ms_p50,
                        point.latency_ms_p99,
                        point.latency_ms_p999,
                        point.shed,
                        point.completed,
                        point.offered,
                    );
                    point
                })
                .collect();
            cells.push(Cell {
                protocol: protocol_name.to_string(),
                runtime: runtime_name.to_string(),
                curve,
            });
        }
    }

    let report = SaturationReport {
        id: "bench-saturation".to_string(),
        members: MEMBERS,
        clients_per_member: CLIENTS,
        max_in_flight_per_client: MAX_IN_FLIGHT,
        batch_max,
        faults: fault_mode,
        cells,
    };
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create results dir: {e}");
        std::process::exit(1);
    }
    let path = dir.join("bench-saturation.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
