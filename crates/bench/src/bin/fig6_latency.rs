//! Regenerates Figure 6: ordering latency vs group size (2-10 members,
//! 3-byte messages, symmetric total order), NewTOP vs FS-NewTOP.

use fs_bench::experiment::{figure6, ExperimentConfig};
use fs_bench::report::write_figure_json;

fn main() {
    let config = ExperimentConfig::default();
    eprintln!(
        "regenerating figure 6 ({} messages/member)...",
        config.messages_per_member
    );
    let figure = figure6(&config);
    println!(
        "{}",
        figure.to_table(|m| m.mean_latency_ms, "mean ordering latency, ms")
    );
    match write_figure_json(&figure) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON results: {e}"),
    }
}
