//! Regenerates Figure 6: ordering latency vs group size (2-10 members,
//! 3-byte messages, symmetric total order), NewTOP vs FS-NewTOP — plus the
//! graceful-degradation variant of the same sweep under mild link loss and
//! delay (skip it with `FS_BENCH_DEGRADED=0`).

use fs_bench::env::env_flag;
use fs_bench::experiment::{figure6, figure6_degraded, ExperimentConfig};
use fs_bench::report::write_figure_json;

fn main() {
    let config = ExperimentConfig::default();
    let degraded = env_flag("FS_BENCH_DEGRADED", true);
    eprintln!(
        "regenerating figure 6 ({} messages/member)...",
        config.messages_per_member
    );
    let mut figures = vec![figure6(&config)];
    if degraded {
        eprintln!("regenerating the degraded-links variant...");
        figures.push(figure6_degraded(&config));
    }
    for figure in &figures {
        println!(
            "{}",
            figure.to_table(|m| m.mean_latency_ms, "mean ordering latency, ms")
        );
        match write_figure_json(figure) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write JSON results: {e}"),
        }
    }
}
