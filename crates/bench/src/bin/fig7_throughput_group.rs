//! Regenerates Figure 7: throughput vs group size (2-15 members, 3-byte
//! messages), NewTOP vs FS-NewTOP.

use fs_bench::experiment::{figure7, ExperimentConfig};
use fs_bench::report::write_figure_json;

fn main() {
    let config = ExperimentConfig::default();
    eprintln!(
        "regenerating figure 7 ({} messages/member)...",
        config.messages_per_member
    );
    let figure = figure7(&config);
    println!(
        "{}",
        figure.to_table(|m| m.throughput_msgs_per_sec, "ordered messages per second")
    );
    match write_figure_json(&figure) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON results: {e}"),
    }
}
