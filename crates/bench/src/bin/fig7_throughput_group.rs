//! Regenerates Figure 7: throughput vs group size (2-15 members, 3-byte
//! messages), NewTOP vs FS-NewTOP — plus the graceful-degradation variant
//! of the same sweep under mild link loss and delay (skip it with
//! `FS_BENCH_DEGRADED=0`).

use fs_bench::env::env_flag;
use fs_bench::experiment::{figure7, figure7_degraded, ExperimentConfig};
use fs_bench::report::write_figure_json;

fn main() {
    let config = ExperimentConfig::default();
    let degraded = env_flag("FS_BENCH_DEGRADED", true);
    eprintln!(
        "regenerating figure 7 ({} messages/member)...",
        config.messages_per_member
    );
    let mut figures = vec![figure7(&config)];
    if degraded {
        eprintln!("regenerating the degraded-links variant...");
        figures.push(figure7_degraded(&config));
    }
    for figure in &figures {
        println!(
            "{}",
            figure.to_table(|m| m.throughput_msgs_per_sec, "ordered messages per second")
        );
        match write_figure_json(figure) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write JSON results: {e}"),
        }
    }
}
