//! Regenerates Figure 8: throughput vs message size (10 members, payloads
//! from 3 bytes to 10 kB), NewTOP vs FS-NewTOP.

use fs_bench::experiment::{figure8, ExperimentConfig};
use fs_bench::report::write_figure_json;

fn main() {
    let config = ExperimentConfig::default();
    eprintln!(
        "regenerating figure 8 ({} messages/member)...",
        config.messages_per_member
    );
    let figure = figure8(&config);
    println!(
        "{}",
        figure.to_table(|m| m.throughput_msgs_per_sec, "ordered messages per second")
    );
    match write_figure_json(&figure) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write JSON results: {e}"),
    }
}
