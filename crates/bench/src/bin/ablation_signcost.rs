//! Ablation A3: contribution of the signature cost to the FS-NewTOP
//! overhead.  The paper attributes much of the latency increase to the
//! MD5-with-RSA signing of output messages; sweeping the cost model shows
//! how the overhead shrinks as signatures get cheaper.

use fs_bench::experiment::{ablation_sign_cost, ExperimentConfig};
use fs_bench::report::ablation_table;

fn main() {
    let config = ExperimentConfig::default();
    let rows = ablation_sign_cost(&config, 5);
    println!(
        "{}",
        ablation_table("ablation A3 — signature cost (5 members)", &rows)
    );
}
