//! Strict environment-knob parsing shared by the benchmark binaries.
//!
//! Every `FS_BENCH_*` knob follows one contract: an *unset* knob takes its
//! documented default, but a *set* knob must parse — a malformed or
//! out-of-range value aborts the run with exit code 2 and a message naming
//! the knob, the offending value and the expected shape.  Benchmarks guard
//! CI regressions, so a typo'd knob silently falling back to its default
//! (the old behaviour) could make a guard pass vacuously.

use std::fmt::Display;
use std::str::FromStr;

/// Exit code for a malformed environment knob.
pub const BAD_KNOB_EXIT: i32 = 2;

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(BAD_KNOB_EXIT);
}

/// Parses a scalar knob value; `Err` carries the user-facing message.
pub fn parse_scalar<T>(name: &str, raw: &str) -> Result<T, String>
where
    T: FromStr,
    T::Err: Display,
{
    raw.trim().parse::<T>().map_err(|e| {
        format!(
            "invalid {name}=`{raw}`: {e} (expected a {})",
            std::any::type_name::<T>()
        )
    })
}

/// Parses a `0`/`1` boolean knob; `Err` carries the user-facing message.
pub fn parse_flag(name: &str, raw: &str) -> Result<bool, String> {
    match raw.trim() {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!("invalid {name}=`{raw}`: expected `0` or `1`")),
    }
}

/// Parses a comma-separated list of strictly positive numbers; `Err`
/// carries the user-facing message.
pub fn parse_positive_list<T>(name: &str, raw: &str) -> Result<Vec<T>, String>
where
    T: FromStr + PartialOrd + Default + Copy,
    T::Err: Display,
{
    let values = raw
        .split(',')
        .map(|item| {
            let value: T = item
                .trim()
                .parse()
                .map_err(|e| format!("invalid {name} entry `{}`: {e}", item.trim()))?;
            // Explicit partial_cmp so a float NaN (incomparable) is
            // rejected too, not just values at or below zero.
            if value.partial_cmp(&T::default()) != Some(std::cmp::Ordering::Greater) {
                return Err(format!(
                    "invalid {name} entry `{}`: must be positive",
                    item.trim()
                ));
            }
            Ok(value)
        })
        .collect::<Result<Vec<T>, String>>()?;
    if values.is_empty() {
        return Err(format!("invalid {name}=`{raw}`: empty list"));
    }
    Ok(values)
}

/// Validates a knob against a closed set of modes; `Err` carries the
/// user-facing message.
pub fn parse_choice(name: &str, raw: &str, allowed: &[&str]) -> Result<String, String> {
    let value = raw.trim();
    if allowed.contains(&value) {
        Ok(value.to_string())
    } else {
        Err(format!(
            "unknown {name} mode `{raw}` (expected one of: {})",
            allowed.join(", ")
        ))
    }
}

/// A `u64` knob: default when unset, exit 2 when set but malformed.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => parse_scalar(name, &raw).unwrap_or_else(|m| fail(&m)),
    }
}

/// An `f64` knob: default when unset, exit 2 when set but malformed.
pub fn env_f64(name: &str, default: f64) -> f64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => parse_scalar(name, &raw).unwrap_or_else(|m| fail(&m)),
    }
}

/// A `0`/`1` knob: default when unset, exit 2 on anything else.
pub fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => parse_flag(name, &raw).unwrap_or_else(|m| fail(&m)),
    }
}

/// A comma-separated positive `f64` list knob: default when unset, exit 2
/// when set but malformed, non-positive or empty.
pub fn env_f64_list(name: &str, default: &[f64]) -> Vec<f64> {
    match std::env::var(name) {
        Err(_) => default.to_vec(),
        Ok(raw) => parse_positive_list(name, &raw).unwrap_or_else(|m| fail(&m)),
    }
}

/// A comma-separated positive `u64` list knob: default when unset, exit 2
/// when set but malformed, zero or empty.
pub fn env_u64_list(name: &str, default: &[u64]) -> Vec<u64> {
    match std::env::var(name) {
        Err(_) => default.to_vec(),
        Ok(raw) => parse_positive_list(name, &raw).unwrap_or_else(|m| fail(&m)),
    }
}

/// A closed-set mode knob: default when unset, exit 2 on an unknown mode.
pub fn env_choice(name: &str, default: &str, allowed: &[&str]) -> String {
    debug_assert!(allowed.contains(&default));
    match std::env::var(name) {
        Err(_) => default.to_string(),
        Ok(raw) => parse_choice(name, &raw, allowed).unwrap_or_else(|m| fail(&m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse_or_explain() {
        assert_eq!(parse_scalar::<u64>("K", "42"), Ok(42));
        assert_eq!(parse_scalar::<f64>("K", " 0.25 "), Ok(0.25));
        let err = parse_scalar::<u64>("K", "4x2").unwrap_err();
        assert!(err.contains("K=`4x2`"), "{err}");
    }

    #[test]
    fn flags_accept_only_zero_and_one() {
        assert_eq!(parse_flag("K", "0"), Ok(false));
        assert_eq!(parse_flag("K", "1"), Ok(true));
        assert!(parse_flag("K", "true").is_err());
        assert!(parse_flag("K", "").is_err());
    }

    #[test]
    fn lists_reject_junk_instead_of_filtering() {
        assert_eq!(
            parse_positive_list::<f64>("K", "25, 50,100"),
            Ok(vec![25.0, 50.0, 100.0])
        );
        // The old behaviour silently dropped the bad entry; now it's fatal.
        assert!(parse_positive_list::<f64>("K", "25,oops,100").is_err());
        assert!(parse_positive_list::<f64>("K", "25,-1").is_err());
        assert!(parse_positive_list::<u64>("K", "1,0").is_err());
        assert!(parse_positive_list::<f64>("K", "").is_err());
    }

    #[test]
    fn choices_name_the_allowed_modes() {
        assert_eq!(
            parse_choice("K", "restart", &["none", "restart"]),
            Ok("restart".to_string())
        );
        let err = parse_choice("K", "restrat", &["none", "restart"]).unwrap_err();
        assert!(err.contains("none, restart"), "{err}");
    }
}
