//! # fs-bench
//!
//! The benchmark harness reproducing the paper's evaluation (§4): workload
//! generation, deployment measurement, per-figure experiment drivers
//! (Figures 6–8) and the ablations listed in DESIGN.md, plus Criterion
//! micro-benchmarks.
//!
//! Regenerate the figures with:
//!
//! ```text
//! cargo run --release -p fs-bench --bin fig6_latency
//! cargo run --release -p fs-bench --bin fig7_throughput_group
//! cargo run --release -p fs-bench --bin fig8_throughput_msgsize
//! ```
//!
//! Set `FS_BENCH_MESSAGES=1000` to use the paper's full per-member message
//! count (the default is smaller so that regeneration stays quick).
//!
//! Host-side wall-clock cost of the authenticated wire path (encode, sign,
//! deliver, verify) is tracked separately by the `hotpath` binary, which
//! writes `results/bench-hotpath.json` (see the README's "Performance"
//! section):
//!
//! ```text
//! cargo run --release -p fs-bench --bin hotpath
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod experiment;
pub mod measure;
pub mod report;

pub use experiment::{figure6, figure7, figure8, ExperimentConfig, Figure, FigureRow};
pub use measure::{measure, run_deployment, RunMetrics, System};
