//! Running a deployment under a workload and extracting the paper's metrics.

use serde::{Deserialize, Serialize};

use fs_common::time::{SimDuration, SimTime};
use fs_harness::{FaultSchedule, Protocol};
use fs_newtop::app::AppProcess;
use fs_newtop_bft::deployment::{Deployment, DeploymentParams};
use fs_newtop_bft::interceptor::FsInterceptor;

/// Which of the two systems a measurement refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum System {
    /// The crash-tolerant baseline.
    NewTop,
    /// The Byzantine-tolerant, fail-signal-wrapped system.
    FsNewTop,
}

impl System {
    /// The label used in tables (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            System::NewTop => "NewTOP",
            System::FsNewTop => "FS-NewTOP",
        }
    }

    /// The scenario-harness protocol this system corresponds to.
    pub fn protocol(self) -> Protocol {
        match self {
            System::NewTop => Protocol::Crash,
            System::FsNewTop => Protocol::FailSignal,
        }
    }
}

/// The metrics extracted from one run, mirroring what the paper reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Which system was measured.
    pub system: System,
    /// Group size (number of members).
    pub members: u32,
    /// Payload size in bytes.
    pub payload_size: usize,
    /// Messages multicast per member.
    pub messages_per_member: u64,
    /// Mean ordering latency (send → total-order delivery at the sender).
    pub mean_latency_ms: f64,
    /// 95th-percentile ordering latency.
    pub p95_latency_ms: f64,
    /// Aggregate ordered-message throughput (messages per second).
    pub throughput_msgs_per_sec: f64,
    /// Total deliveries observed across all applications.
    pub total_deliveries: u64,
    /// Deliveries expected (`members² × messages_per_member`).
    pub expected_deliveries: u64,
    /// Protocol messages sent inside the middleware.
    pub middleware_messages: u64,
    /// Simulated time at which the last delivery happened.
    pub finished_at_ms: f64,
    /// Whether any fail-signal was observed (must be false in failure-free
    /// runs).
    pub fail_signals_observed: bool,
}

impl RunMetrics {
    /// Latency samples are complete when every sender saw all of its own
    /// messages ordered.
    pub fn is_complete(&self) -> bool {
        self.total_deliveries == self.expected_deliveries
    }
}

/// Runs one deployment to completion (or `horizon`) and extracts the metrics.
pub fn run_deployment(
    mut deployment: Deployment,
    params: &DeploymentParams,
    system: System,
    horizon: SimTime,
) -> RunMetrics {
    deployment.run(horizon);

    let n = params.members;
    let messages = params.traffic.messages;
    let mut latencies = fs_simnet::trace::LatencyRecorder::new();
    let mut total_deliveries = 0u64;
    let mut last_delivery = SimTime::ZERO;
    for handle in &deployment.members {
        let app = deployment
            .sim
            .actor::<AppProcess>(handle.app)
            .expect("app actor");
        latencies.merge(app.latencies());
        total_deliveries += app.delivered_total();
        if let Some(t) = app.last_delivery() {
            last_delivery = last_delivery.max(t);
        }
    }

    let fail_signals_observed = if deployment.fail_signal {
        deployment.members.iter().any(|handle| {
            deployment
                .sim
                .actor::<FsInterceptor>(handle.middleware)
                .map(|i| i.local_fail_signalled())
                .unwrap_or(false)
        })
    } else {
        false
    };

    let summary = latencies.summary();
    let (mean, p95) = summary
        .map(|s| (s.mean.as_millis_f64(), s.p95.as_millis_f64()))
        .unwrap_or((f64::NAN, f64::NAN));

    // Throughput as in the paper: total ordered messages divided by the time
    // needed to order them (workload start → last delivery).
    let span = last_delivery.duration_since(SimTime::ZERO + params.traffic.start_delay);
    let ordered = u64::from(n) * messages;
    let throughput = if span > SimDuration::ZERO {
        ordered as f64 / span.as_secs_f64()
    } else {
        0.0
    };

    RunMetrics {
        system,
        members: n,
        payload_size: params.traffic.payload_size,
        messages_per_member: messages,
        mean_latency_ms: mean,
        p95_latency_ms: p95,
        throughput_msgs_per_sec: throughput,
        total_deliveries,
        expected_deliveries: u64::from(n) * u64::from(n) * messages,
        middleware_messages: deployment.sim.stats().messages_sent,
        finished_at_ms: last_delivery.as_millis_f64(),
        fail_signals_observed,
    }
}

/// Builds and measures one system at the given parameters.
pub fn measure(system: System, params: &DeploymentParams) -> RunMetrics {
    measure_with_faults(system, params, FaultSchedule::none())
}

/// [`measure`], with a fault schedule applied through the scenario harness —
/// the graceful-degradation variants of the figures run their sweeps under
/// mild link loss and delay this way.
pub fn measure_with_faults(
    system: System,
    params: &DeploymentParams,
    faults: FaultSchedule,
) -> RunMetrics {
    // Allow generous simulated time: the workload itself lasts
    // messages × interval, plus drain time for queued work.
    let workload = params.traffic.interval * params.traffic.messages
        + SimDuration::from_secs(120)
        + params.traffic.start_delay;
    let horizon = SimTime::ZERO + workload * 10;
    let deployment =
        Deployment::from_running(params.scenario(system.protocol()).faults(faults).build());
    run_deployment(deployment, params, system, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs_newtop::app::TrafficConfig;
    use fs_newtop::suspector::SuspectorConfig;

    fn quick_params(members: u32, messages: u64) -> DeploymentParams {
        DeploymentParams::paper(members)
            .with_traffic(
                TrafficConfig::paper_default()
                    .with_messages(messages)
                    .with_interval(SimDuration::from_millis(30)),
            )
            .with_suspector(SuspectorConfig::disabled())
    }

    #[test]
    fn newtop_run_is_complete_and_failure_free() {
        let params = quick_params(3, 5);
        let m = measure(System::NewTop, &params);
        assert!(
            m.is_complete(),
            "delivered {}/{}",
            m.total_deliveries,
            m.expected_deliveries
        );
        assert!(!m.fail_signals_observed);
        assert!(m.mean_latency_ms.is_finite());
        assert!(m.throughput_msgs_per_sec > 0.0);
    }

    #[test]
    fn fs_newtop_run_is_complete_and_failure_free() {
        let params = quick_params(3, 5);
        let m = measure(System::FsNewTop, &params);
        assert!(m.is_complete());
        assert!(!m.fail_signals_observed);
    }

    #[test]
    fn fs_newtop_has_higher_latency_and_more_messages_than_newtop() {
        let params = quick_params(3, 8);
        let newtop = measure(System::NewTop, &params);
        let fs = measure(System::FsNewTop, &params);
        assert!(
            fs.mean_latency_ms > newtop.mean_latency_ms,
            "FS-NewTOP latency ({}) must exceed NewTOP ({})",
            fs.mean_latency_ms,
            newtop.mean_latency_ms
        );
        assert!(fs.middleware_messages > newtop.middleware_messages);
        assert!(fs.throughput_msgs_per_sec <= newtop.throughput_msgs_per_sec * 1.05);
    }

    #[test]
    fn system_labels_match_paper_legends() {
        assert_eq!(System::NewTop.label(), "NewTOP");
        assert_eq!(System::FsNewTop.label(), "FS-NewTOP");
    }
}
