//! Criterion micro-benchmarks of the building blocks: SHA-256/HMAC, the
//! double-signature path, and one fail-signal wrapper processing an input.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fs_common::id::ProcessId;
use fs_common::rng::DetRng;
use fs_crypto::hmac::HmacSha256;
use fs_crypto::keys::{provision, SignerId};
use fs_crypto::sha256::Sha256;
use fs_crypto::sig::{Signature, SingleSigned};

fn bench_crypto(c: &mut Criterion) {
    let data = vec![0xabu8; 1024];
    let mut group = c.benchmark_group("crypto");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_1k", |b| b.iter(|| Sha256::digest(&data)));
    group.bench_function("hmac_1k", |b| b.iter(|| HmacSha256::mac(b"key", &data)));
    group.finish();

    let mut rng = DetRng::new(1);
    let (mut keys, dir) = provision([ProcessId(0), ProcessId(1)], &mut rng);
    let a = keys.remove(&SignerId(ProcessId(0))).unwrap();
    let b_key = keys.remove(&SignerId(ProcessId(1))).unwrap();
    let mut group = c.benchmark_group("signatures");
    group.bench_function("sign_1k", |bch| bch.iter(|| Signature::sign(&a, &data)));
    group.bench_function("double_sign_verify_1k", |bch| {
        bch.iter(|| {
            let double = SingleSigned::new((), &data, &a).counter_sign(&data, &b_key);
            double
                .verify(&dir, &data, (a.signer, b_key.signer))
                .unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
