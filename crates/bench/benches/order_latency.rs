//! Criterion benchmark: end-to-end symmetric total-order latency of a small
//! group, NewTOP vs FS-NewTOP (a scaled-down Figure 6 point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fs_bench::measure::{measure, System};
use fs_common::time::SimDuration;
use fs_newtop::app::TrafficConfig;
use fs_newtop::suspector::SuspectorConfig;
use fs_newtop_bft::deployment::DeploymentParams;

fn params(members: u32) -> DeploymentParams {
    let traffic = TrafficConfig::paper_default()
        .with_messages(20)
        .with_interval(SimDuration::from_millis(30));
    let mut p = DeploymentParams::paper(members).with_traffic(traffic);
    p.suspector = SuspectorConfig::disabled();
    p
}

fn bench_order_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_latency_sim");
    group.sample_size(10);
    for members in [3u32, 5] {
        group.bench_with_input(BenchmarkId::new("newtop", members), &members, |b, &n| {
            b.iter(|| measure(System::NewTop, &params(n)))
        });
        group.bench_with_input(BenchmarkId::new("fs_newtop", members), &members, |b, &n| {
            b.iter(|| measure(System::FsNewTop, &params(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_order_latency);
criterion_main!(benches);
