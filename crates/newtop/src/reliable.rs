//! Reliable and simple (unreliable) multicast services.
//!
//! The reliable service uses flood-based relaying: on the first receipt of a
//! data message a member delivers it and re-multicasts it to the rest of the
//! group, so a message delivered anywhere is eventually delivered everywhere
//! even if the original sender crashes midway through its multicast.  The
//! simple service delivers whatever arrives, with no relaying and no
//! duplicate suppression beyond per-`(origin, seq)` bookkeeping.

use std::collections::BTreeSet;

use fs_common::id::MemberId;

use crate::message::{AppDeliver, GcMessage, ServiceKind};

/// Per-member state of the reliable-multicast service.
#[derive(Debug, Clone, Default)]
pub struct ReliableMulticast {
    seen: BTreeSet<(MemberId, u64)>,
    delivered: u64,
    next_seq: u64,
    relayed: u64,
}

impl ReliableMulticast {
    /// Creates an empty reliable-multicast state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of relay transmissions performed so far.
    pub fn relayed_count(&self) -> u64 {
        self.relayed
    }

    /// Multicasts `payload` as member `me`; returns the data message to send
    /// and the local self-delivery.
    pub fn multicast(&mut self, me: MemberId, payload: Vec<u8>) -> (GcMessage, AppDeliver) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seen.insert((me, seq));
        let data = GcMessage::Data {
            origin: me,
            seq,
            ts: 0,
            vc: Vec::new(),
            service: ServiceKind::Reliable,
            payload: payload.clone(),
        };
        let order = self.delivered;
        self.delivered += 1;
        (
            data,
            AppDeliver {
                origin: me,
                seq,
                order,
                service: ServiceKind::Reliable,
                payload,
            },
        )
    }

    /// Handles an incoming reliable data message.  Returns the relay message
    /// to re-multicast (on first receipt only) and the local delivery.
    pub fn on_data(
        &mut self,
        origin: MemberId,
        seq: u64,
        payload: Vec<u8>,
    ) -> (Option<GcMessage>, Option<AppDeliver>) {
        if !self.seen.insert((origin, seq)) {
            return (None, None); // duplicate (direct copy and relayed copy)
        }
        let relay = GcMessage::Data {
            origin,
            seq,
            ts: 0,
            vc: Vec::new(),
            service: ServiceKind::Reliable,
            payload: payload.clone(),
        };
        self.relayed += 1;
        let order = self.delivered;
        self.delivered += 1;
        let deliver = AppDeliver {
            origin,
            seq,
            order,
            service: ServiceKind::Reliable,
            payload,
        };
        (Some(relay), Some(deliver))
    }
}

/// Per-member state of the simple (unreliable) multicast service.
#[derive(Debug, Clone, Default)]
pub struct SimpleMulticast {
    delivered: u64,
    next_seq: u64,
}

impl SimpleMulticast {
    /// Creates an empty simple-multicast state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Multicasts `payload` as member `me`; returns the data message and the
    /// local self-delivery.
    pub fn multicast(&mut self, me: MemberId, payload: Vec<u8>) -> (GcMessage, AppDeliver) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let data = GcMessage::Data {
            origin: me,
            seq,
            ts: 0,
            vc: Vec::new(),
            service: ServiceKind::Unreliable,
            payload: payload.clone(),
        };
        let order = self.delivered;
        self.delivered += 1;
        (
            data,
            AppDeliver {
                origin: me,
                seq,
                order,
                service: ServiceKind::Unreliable,
                payload,
            },
        )
    }

    /// Handles an incoming simple data message: always delivered, never
    /// relayed.
    pub fn on_data(&mut self, origin: MemberId, seq: u64, payload: Vec<u8>) -> AppDeliver {
        let order = self.delivered;
        self.delivered += 1;
        AppDeliver {
            origin,
            seq,
            order,
            service: ServiceKind::Unreliable,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_first_receipt_delivers_and_relays() {
        let mut r = ReliableMulticast::new();
        let (relay, deliver) = r.on_data(MemberId(1), 0, b"x".to_vec());
        assert!(relay.is_some());
        assert_eq!(deliver.unwrap().payload, b"x");
        assert_eq!(r.delivered_count(), 1);
        assert_eq!(r.relayed_count(), 1);
    }

    #[test]
    fn reliable_duplicates_are_suppressed() {
        let mut r = ReliableMulticast::new();
        r.on_data(MemberId(1), 0, b"x".to_vec());
        let (relay, deliver) = r.on_data(MemberId(1), 0, b"x".to_vec());
        assert!(relay.is_none());
        assert!(deliver.is_none());
        assert_eq!(r.delivered_count(), 1);
    }

    #[test]
    fn reliable_own_multicast_is_not_redelivered_via_relay() {
        let mut r = ReliableMulticast::new();
        let (data, deliver) = r.multicast(MemberId(0), b"mine".to_vec());
        assert_eq!(deliver.origin, MemberId(0));
        // The message comes back via a relaying peer: must be suppressed.
        let GcMessage::Data {
            origin,
            seq,
            payload,
            ..
        } = data
        else {
            unreachable!()
        };
        let (relay, redeliver) = r.on_data(origin, seq, payload);
        assert!(relay.is_none());
        assert!(redeliver.is_none());
        assert_eq!(r.delivered_count(), 1);
    }

    #[test]
    fn reliable_distinct_messages_all_deliver() {
        let mut r = ReliableMulticast::new();
        for seq in 0..5 {
            let (_, d) = r.on_data(MemberId(2), seq, vec![seq as u8]);
            assert!(d.is_some());
        }
        assert_eq!(r.delivered_count(), 5);
    }

    #[test]
    fn simple_multicast_delivers_everything_including_duplicates() {
        let mut s = SimpleMulticast::new();
        let (_, d) = s.multicast(MemberId(0), b"a".to_vec());
        assert_eq!(d.order, 0);
        let d1 = s.on_data(MemberId(1), 0, b"b".to_vec());
        let d2 = s.on_data(MemberId(1), 0, b"b".to_vec());
        assert_eq!(d1.order, 1);
        assert_eq!(d2.order, 2);
        assert_eq!(s.delivered_count(), 3);
    }

    #[test]
    fn sequence_numbers_increase_per_sender() {
        let mut r = ReliableMulticast::new();
        let (d1, _) = r.multicast(MemberId(0), b"a".to_vec());
        let (d2, _) = r.multicast(MemberId(0), b"b".to_vec());
        let seq = |m: &GcMessage| match m {
            GcMessage::Data { seq, .. } => *seq,
            _ => unreachable!(),
        };
        assert_eq!(seq(&d1), 0);
        assert_eq!(seq(&d2), 1);
    }
}
