//! Reliable and simple (unreliable) multicast services.
//!
//! The reliable service uses flood-based relaying: on the first receipt of a
//! data message a member delivers it and re-multicasts it to the rest of the
//! group, so a message delivered anywhere is eventually delivered everywhere
//! even if the original sender crashes midway through its multicast.
//!
//! Relaying alone cannot recover a message whose *every* copy was lost in
//! flight (a lossy or severed link eating both the direct copy and the
//! relays), so the service also runs a NACK/retransmit layer: per-origin
//! sequence numbers are contiguous, a receipt that jumps ahead reveals the
//! gap, and the receiver NACKs the missing `(origin, seq)` pairs back to the
//! peer whose message exposed them.  Every member retains the payloads it has
//! delivered and answers NACKs with retransmitted data.
//!
//! The simple service delivers whatever arrives, with no relaying and no
//! duplicate suppression beyond per-`(origin, seq)` bookkeeping.

use std::collections::{BTreeMap, BTreeSet};

use fs_common::id::MemberId;

use crate::message::{AppDeliver, GcMessage, ServiceKind};

/// What a [`ReliableMulticast::on_data`] receipt produced.
#[derive(Debug, Clone, Default)]
pub struct ReliableReceipt {
    /// The relay message to re-multicast (first receipt only).
    pub relay: Option<GcMessage>,
    /// The local delivery (first receipt only).
    pub deliver: Option<AppDeliver>,
    /// Per-origin sequence numbers this receipt revealed as missing: every
    /// seq below the received one that has not been seen yet.  The caller
    /// NACKs these back to the peer the data came from.
    pub missing: Vec<u64>,
}

/// Per-member state of the reliable-multicast service.
#[derive(Debug, Clone, Default)]
pub struct ReliableMulticast {
    seen: BTreeSet<(MemberId, u64)>,
    /// Lowest per-origin seq not yet seen contiguously from 0 — the gap scan
    /// starts here, so detection stays O(gap) rather than O(history).
    contiguous: BTreeMap<MemberId, u64>,
    /// Delivered payloads, retained to answer NACKs.
    retained: BTreeMap<(MemberId, u64), Vec<u8>>,
    delivered: u64,
    next_seq: u64,
    relayed: u64,
    nacks_sent: u64,
    retransmits: u64,
}

impl ReliableMulticast {
    /// Creates an empty reliable-multicast state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of relay transmissions performed so far.
    pub fn relayed_count(&self) -> u64 {
        self.relayed
    }

    /// Number of gap sequence numbers this member has NACKed so far.
    pub fn nacks_sent(&self) -> u64 {
        self.nacks_sent
    }

    /// Number of NACKs this member has answered with a retransmission.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Multicasts `payload` as member `me`; returns the data message to send
    /// and the local self-delivery.
    pub fn multicast(&mut self, me: MemberId, payload: Vec<u8>) -> (GcMessage, AppDeliver) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seen.insert((me, seq));
        self.retained.insert((me, seq), payload.clone());
        let data = GcMessage::Data {
            origin: me,
            seq,
            ts: 0,
            vc: Vec::new(),
            service: ServiceKind::Reliable,
            payload: payload.clone(),
        };
        let order = self.delivered;
        self.delivered += 1;
        (
            data,
            AppDeliver {
                origin: me,
                seq,
                order,
                service: ServiceKind::Reliable,
                payload,
            },
        )
    }

    /// Handles an incoming reliable data message: relays and delivers on
    /// first receipt, and reports any per-origin gap the receipt revealed so
    /// the caller can NACK it.
    pub fn on_data(&mut self, origin: MemberId, seq: u64, payload: Vec<u8>) -> ReliableReceipt {
        if !self.seen.insert((origin, seq)) {
            return ReliableReceipt::default(); // duplicate or retransmit of a seen message
        }
        self.retained.insert((origin, seq), payload.clone());
        // Gap scan: everything from the contiguous frontier up to (but not
        // including) this seq that is still unseen is missing in flight —
        // per-origin seqs are assigned contiguously at the origin.
        let frontier = self.contiguous.entry(origin).or_insert(0);
        let missing: Vec<u64> = (*frontier..seq)
            .filter(|s| !self.seen.contains(&(origin, *s)))
            .collect();
        while self.seen.contains(&(origin, *frontier)) {
            *frontier += 1;
        }
        self.nacks_sent += missing.len() as u64;
        let relay = GcMessage::Data {
            origin,
            seq,
            ts: 0,
            vc: Vec::new(),
            service: ServiceKind::Reliable,
            payload: payload.clone(),
        };
        self.relayed += 1;
        let order = self.delivered;
        self.delivered += 1;
        let deliver = AppDeliver {
            origin,
            seq,
            order,
            service: ServiceKind::Reliable,
            payload,
        };
        ReliableReceipt {
            relay: Some(relay),
            deliver: Some(deliver),
            missing,
        }
    }

    /// Answers a NACK for `(origin, seq)`: the retransmitted data message if
    /// this member still retains the payload, `None` otherwise.
    pub fn on_nack(&mut self, origin: MemberId, seq: u64) -> Option<GcMessage> {
        let payload = self.retained.get(&(origin, seq))?.clone();
        self.retransmits += 1;
        Some(GcMessage::Data {
            origin,
            seq,
            ts: 0,
            vc: Vec::new(),
            service: ServiceKind::Reliable,
            payload,
        })
    }
}

/// Per-member state of the simple (unreliable) multicast service.
#[derive(Debug, Clone, Default)]
pub struct SimpleMulticast {
    delivered: u64,
    next_seq: u64,
}

impl SimpleMulticast {
    /// Creates an empty simple-multicast state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Multicasts `payload` as member `me`; returns the data message and the
    /// local self-delivery.
    pub fn multicast(&mut self, me: MemberId, payload: Vec<u8>) -> (GcMessage, AppDeliver) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let data = GcMessage::Data {
            origin: me,
            seq,
            ts: 0,
            vc: Vec::new(),
            service: ServiceKind::Unreliable,
            payload: payload.clone(),
        };
        let order = self.delivered;
        self.delivered += 1;
        (
            data,
            AppDeliver {
                origin: me,
                seq,
                order,
                service: ServiceKind::Unreliable,
                payload,
            },
        )
    }

    /// Handles an incoming simple data message: always delivered, never
    /// relayed.
    pub fn on_data(&mut self, origin: MemberId, seq: u64, payload: Vec<u8>) -> AppDeliver {
        let order = self.delivered;
        self.delivered += 1;
        AppDeliver {
            origin,
            seq,
            order,
            service: ServiceKind::Unreliable,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_first_receipt_delivers_and_relays() {
        let mut r = ReliableMulticast::new();
        let receipt = r.on_data(MemberId(1), 0, b"x".to_vec());
        assert!(receipt.relay.is_some());
        assert_eq!(receipt.deliver.unwrap().payload, b"x");
        assert!(receipt.missing.is_empty());
        assert_eq!(r.delivered_count(), 1);
        assert_eq!(r.relayed_count(), 1);
    }

    #[test]
    fn reliable_duplicates_are_suppressed() {
        let mut r = ReliableMulticast::new();
        r.on_data(MemberId(1), 0, b"x".to_vec());
        let receipt = r.on_data(MemberId(1), 0, b"x".to_vec());
        assert!(receipt.relay.is_none());
        assert!(receipt.deliver.is_none());
        assert_eq!(r.delivered_count(), 1);
    }

    #[test]
    fn reliable_own_multicast_is_not_redelivered_via_relay() {
        let mut r = ReliableMulticast::new();
        let (data, deliver) = r.multicast(MemberId(0), b"mine".to_vec());
        assert_eq!(deliver.origin, MemberId(0));
        // The message comes back via a relaying peer: must be suppressed.
        let GcMessage::Data {
            origin,
            seq,
            payload,
            ..
        } = data
        else {
            unreachable!()
        };
        let receipt = r.on_data(origin, seq, payload);
        assert!(receipt.relay.is_none());
        assert!(receipt.deliver.is_none());
        assert_eq!(r.delivered_count(), 1);
    }

    #[test]
    fn reliable_distinct_messages_all_deliver() {
        let mut r = ReliableMulticast::new();
        for seq in 0..5 {
            let receipt = r.on_data(MemberId(2), seq, vec![seq as u8]);
            assert!(receipt.deliver.is_some());
            assert!(receipt.missing.is_empty(), "in-order receipts have no gaps");
        }
        assert_eq!(r.delivered_count(), 5);
        assert_eq!(r.nacks_sent(), 0);
    }

    #[test]
    fn gap_in_origin_sequence_is_reported_once() {
        let mut r = ReliableMulticast::new();
        r.on_data(MemberId(1), 0, b"a".to_vec());
        // Seqs 1 and 2 are lost in flight; 3 arrives and exposes them.
        let receipt = r.on_data(MemberId(1), 3, b"d".to_vec());
        assert_eq!(receipt.missing, vec![1, 2]);
        assert_eq!(r.nacks_sent(), 2);
        // A later receipt re-reports the still-outstanding gap — the retry
        // that covers a lost NACK or lost retransmission.
        let receipt = r.on_data(MemberId(1), 4, b"e".to_vec());
        assert_eq!(receipt.missing, vec![1, 2], "still outstanding");
        // Once the retransmits land, the frontier advances and the gap closes.
        let receipt = r.on_data(MemberId(1), 1, b"b".to_vec());
        assert!(receipt.missing.is_empty());
        assert!(receipt.deliver.is_some(), "late message still delivers");
        let receipt = r.on_data(MemberId(1), 2, b"c".to_vec());
        assert!(receipt.missing.is_empty());
        let receipt = r.on_data(MemberId(1), 5, b"f".to_vec());
        assert!(receipt.missing.is_empty(), "frontier caught up");
    }

    #[test]
    fn gaps_are_tracked_per_origin() {
        let mut r = ReliableMulticast::new();
        let receipt = r.on_data(MemberId(1), 2, b"x".to_vec());
        assert_eq!(receipt.missing, vec![0, 1]);
        // A different origin's clean stream reports nothing.
        let receipt = r.on_data(MemberId(2), 0, b"y".to_vec());
        assert!(receipt.missing.is_empty());
    }

    #[test]
    fn nack_is_answered_from_retained_payloads() {
        let mut r = ReliableMulticast::new();
        r.on_data(MemberId(1), 0, b"relayed".to_vec());
        let (_, _) = r.multicast(MemberId(0), b"own".to_vec());
        // Both relayed and own messages are retained and retransmittable.
        let data = r.on_nack(MemberId(1), 0).expect("retained relay");
        let GcMessage::Data {
            payload, service, ..
        } = data
        else {
            unreachable!()
        };
        assert_eq!(payload, b"relayed");
        assert_eq!(service, ServiceKind::Reliable);
        assert!(
            r.on_nack(MemberId(0), 0).is_some(),
            "own multicast retained"
        );
        assert!(r.on_nack(MemberId(3), 9).is_none(), "unknown message");
        assert_eq!(r.retransmits(), 2);
    }

    #[test]
    fn simple_multicast_delivers_everything_including_duplicates() {
        let mut s = SimpleMulticast::new();
        let (_, d) = s.multicast(MemberId(0), b"a".to_vec());
        assert_eq!(d.order, 0);
        let d1 = s.on_data(MemberId(1), 0, b"b".to_vec());
        let d2 = s.on_data(MemberId(1), 0, b"b".to_vec());
        assert_eq!(d1.order, 1);
        assert_eq!(d2.order, 2);
        assert_eq!(s.delivered_count(), 3);
    }

    #[test]
    fn sequence_numbers_increase_per_sender() {
        let mut r = ReliableMulticast::new();
        let (d1, _) = r.multicast(MemberId(0), b"a".to_vec());
        let (d2, _) = r.multicast(MemberId(0), b"b".to_vec());
        let seq = |m: &GcMessage| match m {
            GcMessage::Data { seq, .. } => *seq,
            _ => unreachable!(),
        };
        assert_eq!(seq(&d1), 0);
        assert_eq!(seq(&d2), 1);
    }
}
