//! Wire messages of the NewTOP group communication service.
//!
//! Three layers of vocabulary are defined here:
//!
//! * **application ↔ invocation layer**: [`AppRequest`] (the marshalled
//!   multicast request, the analogue of NewTOP's generic CORBA `any`
//!   argument) and [`AppDeliver`] / [`ViewDeliver`] (what the invocation
//!   layer hands back to the application);
//! * **GC ↔ GC**: [`GcMessage`] — the protocol messages exchanged between
//!   group communication objects (data, symmetric-order acknowledgements,
//!   sequencer orders, ping/pong, suspicion notices);
//! * **environment ↔ GC**: [`ControlInput`] — suspicions fed by the failure
//!   suspector (timeout-based in NewTOP, fail-signal-driven in FS-NewTOP).

use fs_common::codec::{Decoder, Encoder, Wire};
use fs_common::error::CodecError;
use fs_common::id::MemberId;

/// Which NewTOP service a multicast requests (§3: the Invocation service
/// "allows the application to specify the type of NewTOP service needed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceKind {
    /// Symmetric total order: ordered only after logical acknowledgement by
    /// all members (message intensive; the paper's benchmark workload).
    SymmetricTotal,
    /// Asymmetric total order: a sequencer member assigns the order.
    AsymmetricTotal,
    /// Reliable multicast (flood-based relay, no ordering guarantee).
    Reliable,
    /// Simple unreliable multicast.
    Unreliable,
    /// Causal order multicast (vector-clock based).
    Causal,
}

impl ServiceKind {
    const ALL: [ServiceKind; 5] = [
        ServiceKind::SymmetricTotal,
        ServiceKind::AsymmetricTotal,
        ServiceKind::Reliable,
        ServiceKind::Unreliable,
        ServiceKind::Causal,
    ];

    fn tag(self) -> u8 {
        match self {
            ServiceKind::SymmetricTotal => 0,
            ServiceKind::AsymmetricTotal => 1,
            ServiceKind::Reliable => 2,
            ServiceKind::Unreliable => 3,
            ServiceKind::Causal => 4,
        }
    }

    fn from_tag(t: u8) -> Result<Self, CodecError> {
        Self::ALL
            .into_iter()
            .find(|s| s.tag() == t)
            .ok_or(CodecError::UnknownTag(t))
    }
}

impl Wire for ServiceKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tag());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Self::from_tag(dec.get_u8()?)
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

/// A multicast request marshalled by the invocation layer and handed to the
/// GC object (the analogue of the CORBA `any`-typed invocation in NewTOP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppRequest {
    /// The service requested.
    pub service: ServiceKind,
    /// The opaque application payload.
    pub payload: Vec<u8>,
}

impl Wire for AppRequest {
    fn encode(&self, enc: &mut Encoder) {
        self.service.encode(enc);
        enc.put_bytes(&self.payload);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            service: ServiceKind::decode(dec)?,
            payload: dec.get_bytes_owned()?,
        })
    }
    fn encoded_len(&self) -> usize {
        1 + 4 + self.payload.len()
    }
}

/// A message delivered by the GC object to the local application through the
/// invocation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppDeliver {
    /// The member that multicast the message.
    pub origin: MemberId,
    /// The origin's per-member sequence number for this message.
    pub seq: u64,
    /// The position of this delivery in the local delivery order (for the
    /// total-order services this is the agreed global order).
    pub order: u64,
    /// The service that carried the message.
    pub service: ServiceKind,
    /// The application payload.
    pub payload: Vec<u8>,
}

impl Wire for AppDeliver {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_member(self.origin);
        enc.put_u64(self.seq);
        enc.put_u64(self.order);
        self.service.encode(enc);
        enc.put_bytes(&self.payload);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            origin: dec.get_member()?,
            seq: dec.get_u64()?,
            order: dec.get_u64()?,
            service: ServiceKind::decode(dec)?,
            payload: dec.get_bytes_owned()?,
        })
    }
    fn encoded_len(&self) -> usize {
        4 + 8 + 8 + 1 + 4 + self.payload.len()
    }
}

/// A view (membership) change delivered to the local application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDeliver {
    /// Monotonically increasing view number.
    pub view_id: u64,
    /// The members of the new view, in ascending order.
    pub members: Vec<MemberId>,
}

impl Wire for ViewDeliver {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.view_id);
        enc.put_u32(self.members.len() as u32);
        for m in &self.members {
            enc.put_member(*m);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let view_id = dec.get_u64()?;
        let n = dec.get_u32()? as usize;
        let mut members = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            members.push(dec.get_member()?);
        }
        Ok(Self { view_id, members })
    }
    fn encoded_len(&self) -> usize {
        8 + 4 + 4 * self.members.len()
    }
}

/// Everything the invocation layer can hand up to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Upcall {
    /// An ordinary message delivery.
    Deliver(AppDeliver),
    /// A membership change.
    View(ViewDeliver),
}

impl Wire for Upcall {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Upcall::Deliver(d) => {
                enc.put_u8(0);
                d.encode(enc);
            }
            Upcall::View(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(Upcall::Deliver(AppDeliver::decode(dec)?)),
            1 => Ok(Upcall::View(ViewDeliver::decode(dec)?)),
            t => Err(CodecError::UnknownTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Upcall::Deliver(d) => d.encoded_len(),
            Upcall::View(v) => v.encoded_len(),
        }
    }
}

/// Protocol messages exchanged between GC objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcMessage {
    /// An application message multicast by `origin`.
    Data {
        /// The multicasting member.
        origin: MemberId,
        /// The origin's per-member sequence number.
        seq: u64,
        /// The origin's Lamport timestamp at multicast time (symmetric order).
        ts: u64,
        /// The origin's vector clock at multicast time (causal order); empty
        /// for services that do not need it.
        vc: Vec<u64>,
        /// The service this message was submitted under.
        service: ServiceKind,
        /// The application payload.
        payload: Vec<u8>,
    },
    /// A symmetric-total-order acknowledgement of `(origin, seq)` by `from`.
    Ack {
        /// The member whose message is acknowledged.
        origin: MemberId,
        /// Its sequence number.
        seq: u64,
        /// The acknowledging member.
        from: MemberId,
        /// The acknowledging member's Lamport clock after receipt.
        clock: u64,
    },
    /// A sequencing decision by the asymmetric-order sequencer.
    Order {
        /// The sequencer issuing the decision.
        sequencer: MemberId,
        /// The agreed global sequence number.
        global_seq: u64,
        /// The ordered message's origin.
        origin: MemberId,
        /// The ordered message's per-origin sequence number.
        seq: u64,
    },
    /// A liveness probe from the (timeout-based) failure suspector.
    Ping {
        /// The probing member.
        from: MemberId,
        /// Correlation nonce echoed by the pong.
        nonce: u64,
    },
    /// The answer to a [`GcMessage::Ping`].
    Pong {
        /// The answering member.
        from: MemberId,
        /// The nonce from the ping.
        nonce: u64,
    },
    /// A suspicion notice: `from` suspects `suspect` and asks the group to
    /// install the corresponding view change.
    Suspect {
        /// The suspected member.
        suspect: MemberId,
        /// The member announcing the suspicion.
        from: MemberId,
    },
    /// A negative acknowledgement: `from` noticed a gap in `origin`'s
    /// reliable-multicast sequence and asks for `(origin, seq)` to be
    /// retransmitted.  Sent point-to-point to a peer believed to hold the
    /// message (the peer whose out-of-order data revealed the gap); the
    /// receiver answers with a retransmitted [`GcMessage::Data`] if it still
    /// retains the payload.
    Nack {
        /// The origin of the missing message.
        origin: MemberId,
        /// The missing per-origin sequence number.
        seq: u64,
        /// The member requesting retransmission.
        from: MemberId,
    },
}

impl GcMessage {
    /// A short tag naming the variant, for traces and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            GcMessage::Data { .. } => "data",
            GcMessage::Ack { .. } => "ack",
            GcMessage::Order { .. } => "order",
            GcMessage::Ping { .. } => "ping",
            GcMessage::Pong { .. } => "pong",
            GcMessage::Suspect { .. } => "suspect",
            GcMessage::Nack { .. } => "nack",
        }
    }
}

impl Wire for GcMessage {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            GcMessage::Data {
                origin,
                seq,
                ts,
                vc,
                service,
                payload,
            } => {
                enc.put_u8(0);
                enc.put_member(*origin);
                enc.put_u64(*seq);
                enc.put_u64(*ts);
                enc.put_u32(vc.len() as u32);
                for v in vc {
                    enc.put_u64(*v);
                }
                service.encode(enc);
                enc.put_bytes(payload);
            }
            GcMessage::Ack {
                origin,
                seq,
                from,
                clock,
            } => {
                enc.put_u8(1);
                enc.put_member(*origin);
                enc.put_u64(*seq);
                enc.put_member(*from);
                enc.put_u64(*clock);
            }
            GcMessage::Order {
                sequencer,
                global_seq,
                origin,
                seq,
            } => {
                enc.put_u8(2);
                enc.put_member(*sequencer);
                enc.put_u64(*global_seq);
                enc.put_member(*origin);
                enc.put_u64(*seq);
            }
            GcMessage::Ping { from, nonce } => {
                enc.put_u8(3);
                enc.put_member(*from);
                enc.put_u64(*nonce);
            }
            GcMessage::Pong { from, nonce } => {
                enc.put_u8(4);
                enc.put_member(*from);
                enc.put_u64(*nonce);
            }
            GcMessage::Suspect { suspect, from } => {
                enc.put_u8(5);
                enc.put_member(*suspect);
                enc.put_member(*from);
            }
            GcMessage::Nack { origin, seq, from } => {
                enc.put_u8(6);
                enc.put_member(*origin);
                enc.put_u64(*seq);
                enc.put_member(*from);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => {
                let origin = dec.get_member()?;
                let seq = dec.get_u64()?;
                let ts = dec.get_u64()?;
                let n = dec.get_u32()? as usize;
                if n > 4096 {
                    return Err(CodecError::LengthOverflow {
                        length: n,
                        max: 4096,
                    });
                }
                let mut vc = Vec::with_capacity(n);
                for _ in 0..n {
                    vc.push(dec.get_u64()?);
                }
                let service = ServiceKind::decode(dec)?;
                let payload = dec.get_bytes_owned()?;
                Ok(GcMessage::Data {
                    origin,
                    seq,
                    ts,
                    vc,
                    service,
                    payload,
                })
            }
            1 => Ok(GcMessage::Ack {
                origin: dec.get_member()?,
                seq: dec.get_u64()?,
                from: dec.get_member()?,
                clock: dec.get_u64()?,
            }),
            2 => Ok(GcMessage::Order {
                sequencer: dec.get_member()?,
                global_seq: dec.get_u64()?,
                origin: dec.get_member()?,
                seq: dec.get_u64()?,
            }),
            3 => Ok(GcMessage::Ping {
                from: dec.get_member()?,
                nonce: dec.get_u64()?,
            }),
            4 => Ok(GcMessage::Pong {
                from: dec.get_member()?,
                nonce: dec.get_u64()?,
            }),
            5 => Ok(GcMessage::Suspect {
                suspect: dec.get_member()?,
                from: dec.get_member()?,
            }),
            6 => Ok(GcMessage::Nack {
                origin: dec.get_member()?,
                seq: dec.get_u64()?,
                from: dec.get_member()?,
            }),
            t => Err(CodecError::UnknownTag(t)),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            GcMessage::Data { vc, payload, .. } => {
                4 + 8 + 8 + 4 + 8 * vc.len() + 1 + 4 + payload.len()
            }
            GcMessage::Ack { .. } => 4 + 8 + 4 + 8,
            GcMessage::Order { .. } => 4 + 8 + 4 + 8,
            GcMessage::Ping { .. } | GcMessage::Pong { .. } => 4 + 8,
            GcMessage::Suspect { .. } => 4 + 4,
            GcMessage::Nack { .. } => 4 + 8 + 4,
        }
    }
}

/// Inputs delivered to the GC machine by its environment (rather than by a
/// peer or the local application).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlInput {
    /// The failure suspector reports `member` as suspected.  In NewTOP this
    /// comes from ping timeouts (and can be *false*); in FS-NewTOP it comes
    /// from a received fail-signal (and is always correct).
    Suspect(MemberId),
}

impl Wire for ControlInput {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ControlInput::Suspect(m) => {
                enc.put_u8(0);
                enc.put_member(*m);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(ControlInput::Suspect(dec.get_member()?)),
            t => Err(CodecError::UnknownTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_kind_round_trip() {
        for s in ServiceKind::ALL {
            assert_eq!(ServiceKind::from_wire(&s.to_wire()).unwrap(), s);
        }
        assert!(ServiceKind::from_wire(&[9]).is_err());
    }

    #[test]
    fn app_request_round_trip() {
        let r = AppRequest {
            service: ServiceKind::SymmetricTotal,
            payload: vec![1, 2, 3],
        };
        assert_eq!(AppRequest::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn deliveries_round_trip() {
        let d = AppDeliver {
            origin: MemberId(2),
            seq: 7,
            order: 41,
            service: ServiceKind::Causal,
            payload: b"bid 100".to_vec(),
        };
        assert_eq!(AppDeliver::from_wire(&d.to_wire()).unwrap(), d);

        let v = ViewDeliver {
            view_id: 3,
            members: vec![MemberId(0), MemberId(2)],
        };
        assert_eq!(ViewDeliver::from_wire(&v.to_wire()).unwrap(), v);

        let u1 = Upcall::Deliver(d);
        let u2 = Upcall::View(v);
        assert_eq!(Upcall::from_wire(&u1.to_wire()).unwrap(), u1);
        assert_eq!(Upcall::from_wire(&u2.to_wire()).unwrap(), u2);
    }

    #[test]
    fn gc_messages_round_trip() {
        let messages = vec![
            GcMessage::Data {
                origin: MemberId(1),
                seq: 9,
                ts: 33,
                vc: vec![1, 2, 3],
                service: ServiceKind::SymmetricTotal,
                payload: vec![0xab; 10],
            },
            GcMessage::Ack {
                origin: MemberId(1),
                seq: 9,
                from: MemberId(2),
                clock: 35,
            },
            GcMessage::Order {
                sequencer: MemberId(0),
                global_seq: 4,
                origin: MemberId(1),
                seq: 9,
            },
            GcMessage::Ping {
                from: MemberId(1),
                nonce: 77,
            },
            GcMessage::Pong {
                from: MemberId(2),
                nonce: 77,
            },
            GcMessage::Suspect {
                suspect: MemberId(2),
                from: MemberId(0),
            },
            GcMessage::Nack {
                origin: MemberId(1),
                seq: 4,
                from: MemberId(2),
            },
        ];
        for m in messages {
            assert_eq!(
                GcMessage::from_wire(&m.to_wire()).unwrap(),
                m,
                "{}",
                m.kind()
            );
        }
    }

    #[test]
    fn gc_message_kinds_are_distinct() {
        let kinds: Vec<&str> = vec![
            GcMessage::Data {
                origin: MemberId(0),
                seq: 0,
                ts: 0,
                vc: vec![],
                service: ServiceKind::Reliable,
                payload: vec![],
            }
            .kind(),
            GcMessage::Ack {
                origin: MemberId(0),
                seq: 0,
                from: MemberId(0),
                clock: 0,
            }
            .kind(),
            GcMessage::Order {
                sequencer: MemberId(0),
                global_seq: 0,
                origin: MemberId(0),
                seq: 0,
            }
            .kind(),
            GcMessage::Ping {
                from: MemberId(0),
                nonce: 0,
            }
            .kind(),
            GcMessage::Pong {
                from: MemberId(0),
                nonce: 0,
            }
            .kind(),
            GcMessage::Suspect {
                suspect: MemberId(0),
                from: MemberId(0),
            }
            .kind(),
            GcMessage::Nack {
                origin: MemberId(0),
                seq: 0,
                from: MemberId(0),
            }
            .kind(),
        ];
        let unique: std::collections::BTreeSet<&str> = kinds.iter().copied().collect();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn control_input_round_trip() {
        let c = ControlInput::Suspect(MemberId(4));
        assert_eq!(ControlInput::from_wire(&c.to_wire()).unwrap(), c);
        assert!(ControlInput::from_wire(&[7]).is_err());
    }

    #[test]
    fn oversized_vector_clock_is_rejected() {
        let mut enc = Encoder::new();
        enc.put_u8(0);
        enc.put_member(MemberId(0));
        enc.put_u64(0);
        enc.put_u64(0);
        enc.put_u32(1_000_000); // absurd vc length
        let bytes = enc.finish_vec();
        assert!(GcMessage::from_wire(&bytes).is_err());
    }

    #[test]
    fn malformed_gc_message_is_rejected() {
        assert!(GcMessage::from_wire(&[]).is_err());
        assert!(GcMessage::from_wire(&[42]).is_err());
    }
}
