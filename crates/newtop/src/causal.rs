//! Causal-order multicast (vector clocks with a hold-back queue).
//!
//! Each member keeps a vector clock indexed by the members of the *initial*
//! group.  A multicast carries the sender's vector clock; a receiver delivers
//! it once (a) it is the next message expected from that sender and (b) every
//! message the sender had already delivered when it sent has been delivered
//! locally too.  Messages that arrive early are held back.

use fs_common::id::MemberId;

use crate::message::{AppDeliver, GcMessage, ServiceKind};

/// Per-member state of the causal-order service.
#[derive(Debug, Clone)]
pub struct CausalOrder {
    me: MemberId,
    /// The initial group, fixing vector-clock indices.
    group: Vec<MemberId>,
    /// vc[i] = number of messages from group[i] delivered locally
    /// (for `me`'s own index: number of messages multicast).
    vc: Vec<u64>,
    /// Held-back messages: `(origin, origin's vc at send time, payload)`.
    holdback: Vec<(MemberId, Vec<u64>, Vec<u8>, u64)>,
    delivered: u64,
    next_seq: u64,
}

impl CausalOrder {
    /// Creates the causal-order state for `me` within `group`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not part of `group`.
    pub fn new(me: MemberId, group: Vec<MemberId>) -> Self {
        assert!(group.contains(&me), "member must belong to its own group");
        let n = group.len();
        Self {
            me,
            group,
            vc: vec![0; n],
            holdback: Vec::new(),
            delivered: 0,
            next_seq: 0,
        }
    }

    fn index_of(&self, m: MemberId) -> Option<usize> {
        self.group.iter().position(|x| *x == m)
    }

    /// The local vector clock (exposed for tests).
    pub fn clock(&self) -> &[u64] {
        &self.vc
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of held-back messages.
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// Multicasts `payload`; returns the data message to send and the local
    /// self-delivery (a member always delivers its own causal multicasts
    /// immediately).
    pub fn multicast(&mut self, payload: Vec<u8>) -> (GcMessage, AppDeliver) {
        let my_index = self.index_of(self.me).expect("checked in new");
        self.vc[my_index] += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let data = GcMessage::Data {
            origin: self.me,
            seq,
            ts: 0,
            vc: self.vc.clone(),
            service: ServiceKind::Causal,
            payload: payload.clone(),
        };
        let order = self.delivered;
        self.delivered += 1;
        (
            data,
            AppDeliver {
                origin: self.me,
                seq,
                order,
                service: ServiceKind::Causal,
                payload,
            },
        )
    }

    /// Handles an incoming causal data message; returns any deliveries it
    /// enables (possibly including previously held-back messages).
    pub fn on_data(
        &mut self,
        origin: MemberId,
        seq: u64,
        vc: Vec<u64>,
        payload: Vec<u8>,
    ) -> Vec<AppDeliver> {
        if origin == self.me {
            return Vec::new(); // own messages are self-delivered at multicast time
        }
        if vc.len() != self.group.len() || self.index_of(origin).is_none() {
            // A malformed clock cannot come from a correct member; ignore it.
            return Vec::new();
        }
        self.holdback.push((origin, vc, payload, seq));
        self.drain_holdback()
    }

    fn deliverable(&self, origin: MemberId, vc: &[u64]) -> bool {
        let oi = self.index_of(origin).expect("validated");
        if vc[oi] != self.vc[oi] + 1 {
            return false;
        }
        vc.iter()
            .enumerate()
            .all(|(k, &v)| k == oi || v <= self.vc[k])
    }

    fn drain_holdback(&mut self) -> Vec<AppDeliver> {
        let mut out = Vec::new();
        while let Some(pos) = self
            .holdback
            .iter()
            .position(|(origin, vc, _, _)| self.deliverable(*origin, vc))
        {
            let (origin, _vc, payload, seq) = self.holdback.remove(pos);
            let oi = self.index_of(origin).expect("validated");
            self.vc[oi] += 1;
            let order = self.delivered;
            self.delivered += 1;
            out.push(AppDeliver {
                origin,
                seq,
                order,
                service: ServiceKind::Causal,
                payload,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u32) -> Vec<MemberId> {
        (0..n).map(MemberId).collect()
    }

    #[test]
    fn own_multicast_is_self_delivered() {
        let mut c = CausalOrder::new(MemberId(0), group(3));
        let (_data, deliver) = c.multicast(b"x".to_vec());
        assert_eq!(deliver.origin, MemberId(0));
        assert_eq!(c.delivered_count(), 1);
        assert_eq!(c.clock(), &[1, 0, 0]);
    }

    #[test]
    fn in_order_messages_deliver_immediately() {
        let mut sender = CausalOrder::new(MemberId(0), group(2));
        let mut receiver = CausalOrder::new(MemberId(1), group(2));
        let (data, _) = sender.multicast(b"a".to_vec());
        let GcMessage::Data {
            origin,
            seq,
            vc,
            payload,
            ..
        } = data
        else {
            unreachable!()
        };
        let dels = receiver.on_data(origin, seq, vc, payload);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].payload, b"a");
    }

    #[test]
    fn causal_dependency_is_respected() {
        // m1 from member 0, then m2 from member 1 which causally follows m1.
        let g = group(3);
        let mut a = CausalOrder::new(MemberId(0), g.clone());
        let mut b = CausalOrder::new(MemberId(1), g.clone());
        let mut c = CausalOrder::new(MemberId(2), g.clone());

        let (m1, _) = a.multicast(b"m1".to_vec());
        let GcMessage::Data {
            origin: o1,
            seq: s1,
            vc: vc1,
            payload: p1,
            ..
        } = m1
        else {
            unreachable!()
        };
        // b receives m1 and then multicasts m2 (causally after m1).
        b.on_data(o1, s1, vc1.clone(), p1.clone());
        let (m2, _) = b.multicast(b"m2".to_vec());
        let GcMessage::Data {
            origin: o2,
            seq: s2,
            vc: vc2,
            payload: p2,
            ..
        } = m2
        else {
            unreachable!()
        };

        // c receives m2 *before* m1: it must hold m2 back.
        let dels = c.on_data(o2, s2, vc2, p2);
        assert!(dels.is_empty());
        assert_eq!(c.holdback_len(), 1);
        // When m1 arrives both become deliverable, m1 first.
        let dels = c.on_data(o1, s1, vc1, p1);
        assert_eq!(dels.len(), 2);
        assert_eq!(dels[0].payload, b"m1");
        assert_eq!(dels[1].payload, b"m2");
    }

    #[test]
    fn fifo_from_single_sender_is_preserved() {
        let g = group(2);
        let mut a = CausalOrder::new(MemberId(0), g.clone());
        let mut b = CausalOrder::new(MemberId(1), g);
        let (m1, _) = a.multicast(b"1".to_vec());
        let (m2, _) = a.multicast(b"2".to_vec());
        let unpack = |m: GcMessage| match m {
            GcMessage::Data {
                origin,
                seq,
                vc,
                payload,
                ..
            } => (origin, seq, vc, payload),
            _ => unreachable!(),
        };
        let (o2, s2, vc2, p2) = unpack(m2);
        let (o1, s1, vc1, p1) = unpack(m1);
        // Second message arrives first: held back.
        assert!(b.on_data(o2, s2, vc2, p2).is_empty());
        let dels = b.on_data(o1, s1, vc1, p1);
        assert_eq!(dels.len(), 2);
        assert_eq!(dels[0].payload, b"1");
        assert_eq!(dels[1].payload, b"2");
    }

    #[test]
    fn malformed_vector_clock_is_ignored() {
        let mut c = CausalOrder::new(MemberId(0), group(3));
        assert!(c
            .on_data(MemberId(1), 0, vec![1], b"bad".to_vec())
            .is_empty());
        assert!(c
            .on_data(MemberId(9), 0, vec![1, 0, 0], b"bad".to_vec())
            .is_empty());
        assert_eq!(c.holdback_len(), 0);
    }

    #[test]
    #[should_panic(expected = "belong to its own group")]
    fn member_outside_group_panics() {
        CausalOrder::new(MemberId(9), group(2));
    }

    #[test]
    fn duplicate_own_message_is_not_redelivered() {
        let mut a = CausalOrder::new(MemberId(0), group(2));
        let (data, _) = a.multicast(b"x".to_vec());
        let GcMessage::Data {
            origin,
            seq,
            vc,
            payload,
            ..
        } = data
        else {
            unreachable!()
        };
        assert!(a.on_data(origin, seq, vc, payload).is_empty());
        assert_eq!(a.delivered_count(), 1);
    }
}
