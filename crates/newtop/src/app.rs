//! A generic application process (workload generator + measurement probe).
//!
//! [`AppProcess`] plays the role of the `A_i` processes in the paper's
//! experiments (§4): it multicasts a configurable number of fixed-size
//! messages at a regular interval through its local middleware process, and
//! records (a) the ordering latency of its own messages (send → total-order
//! delivery back to itself) and (b) the time of every delivery it receives,
//! from which the benchmark harness derives the throughput figures.
//!
//! The same actor drives both baselines: point it at a crash-tolerant
//! [`crate::nso::NsoActor`] for NewTOP, or at a fail-signal interceptor for
//! FS-NewTOP.

use std::collections::BTreeMap;

use fs_common::codec::{Decoder, Encoder};
use fs_common::id::{MemberId, ProcessId};
use fs_common::rng::DetRng;
use fs_common::time::{SimDuration, SimTime};
use fs_common::Bytes;
use fs_simnet::actor::{Actor, Context, TimerId};
use fs_simnet::load::{Admission, AdmissionGate, Arrival, ArrivalPacer, LoadStats};
use fs_simnet::trace::LatencyRecorder;

use crate::invocation::InvocationService;
use crate::message::{ServiceKind, Upcall};

/// Timer used to pace the workload.
pub const TIMER_SEND: TimerId = TimerId(100);

/// Timer closing an open request batch after the configured linger.
pub const TIMER_FLUSH: TimerId = TimerId(101);

/// Workload configuration for one application process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// The NewTOP service to request.
    pub service: ServiceKind,
    /// Payload size in bytes (the paper uses 3 bytes for "0k" and up to 10 kB).
    pub payload_size: usize,
    /// How many request arrivals to generate in total (under admission
    /// control some may be shed before submission).
    pub messages: u64,
    /// Mean interval between consecutive arrivals.
    pub interval: SimDuration,
    /// Delay before the first arrival (lets the deployment settle).
    pub start_delay: SimDuration,
    /// The arrival process: fixed-rate or open-loop Poisson.
    pub arrival: Arrival,
    /// Seed of the arrival-process RNG (each member derives its own stream).
    pub arrival_seed: u64,
    /// Logical clients of this application; arrivals go round-robin.
    pub clients: u32,
    /// Per-client bound on submitted-but-undelivered requests (0 = none).
    pub max_in_flight: u32,
    /// What happens to an arrival whose client is at `max_in_flight`.
    pub admission: Admission,
    /// Requests per multicast batch (1 = batching off).  When batching is on,
    /// the multicast payload carries a counted list of application payloads
    /// and every receiver expands it back into per-request deliveries.
    pub batch_max: u32,
    /// An open batch is flushed this long after its first request.
    pub batch_linger: SimDuration,
}

impl TrafficConfig {
    /// The paper's latency/throughput workload: 1000 small messages per
    /// member at a regular interval, symmetric total order.
    pub fn paper_default() -> Self {
        Self {
            service: ServiceKind::SymmetricTotal,
            payload_size: 3,
            messages: 1000,
            interval: SimDuration::from_millis(40),
            start_delay: SimDuration::from_millis(10),
            arrival: Arrival::Paced,
            arrival_seed: 0,
            clients: 1,
            max_in_flight: 0,
            admission: Admission::Shed,
            batch_max: 1,
            batch_linger: SimDuration::from_millis(1),
        }
    }

    /// Returns a copy with a different message count (useful for tests).
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Returns a copy with a different payload size.
    pub fn with_payload_size(mut self, payload_size: usize) -> Self {
        self.payload_size = payload_size;
        self
    }

    /// Returns a copy with a different send interval.
    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self
    }

    /// Returns a copy with a different service kind.
    pub fn with_service(mut self, service: ServiceKind) -> Self {
        self.service = service;
        self
    }

    /// Returns a copy with a different arrival process.
    pub fn with_arrival(mut self, arrival: Arrival, arrival_seed: u64) -> Self {
        self.arrival = arrival;
        self.arrival_seed = arrival_seed;
        self
    }

    /// Returns a copy with an admission-control bound.
    pub fn with_admission(mut self, clients: u32, max_in_flight: u32, policy: Admission) -> Self {
        self.clients = clients;
        self.max_in_flight = max_in_flight;
        self.admission = policy;
        self
    }

    /// Returns a copy batching up to `batch_max` requests per multicast.
    pub fn with_batching(mut self, batch_max: u32, batch_linger: SimDuration) -> Self {
        self.batch_max = batch_max.max(1);
        self.batch_linger = batch_linger;
        self
    }
}

/// Builds the application payload: the sender's member id and application
/// sequence number, padded to the configured size.
pub fn build_payload(member: MemberId, seq: u64, size: usize) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(size + 12);
    enc.put_member(member);
    enc.put_u64(seq);
    let mut bytes = enc.finish_vec();
    if bytes.len() < size {
        bytes.resize(size, 0xa5);
    }
    bytes
}

/// Parses the header of an application payload built by [`build_payload`].
pub fn parse_payload(bytes: &[u8]) -> Option<(MemberId, u64)> {
    let mut dec = Decoder::new(bytes);
    let member = dec.get_member().ok()?;
    let seq = dec.get_u64().ok()?;
    Some((member, seq))
}

/// Packs several application payloads into one batched multicast payload:
/// a `u32` count followed by length-prefixed items.
pub fn build_batch_payload(items: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = items.iter().map(|i| 4 + i.len()).sum();
    let mut enc = Encoder::with_capacity(4 + total);
    enc.put_u32(items.len() as u32);
    for item in items {
        enc.put_bytes(item);
    }
    enc.finish_vec()
}

/// Expands a batched multicast payload built by [`build_batch_payload`].
pub fn parse_batch_payload(bytes: &[u8]) -> Option<Vec<Bytes>> {
    let mut dec = Decoder::new(bytes);
    let count = dec.get_u32().ok()?;
    let mut items = Vec::with_capacity(count as usize);
    for _ in 0..count {
        items.push(dec.get_bytes_shared().ok()?);
    }
    Some(items)
}

/// The application process / workload generator.
pub struct AppProcess {
    member: MemberId,
    middleware: ProcessId,
    config: TrafficConfig,
    invocation: InvocationService,
    pacer: ArrivalPacer,
    gate: AdmissionGate,
    /// Arrivals generated so far (admitted or not).
    offered: u64,
    sent: u64,
    sent_at: BTreeMap<u64, SimTime>,
    /// The logical client each in-flight request was submitted for.
    client_of: BTreeMap<u64, u32>,
    /// The open batch: `(seq, payload)` of buffered requests.
    batch: Vec<(u64, Vec<u8>)>,
    latencies: LatencyRecorder,
    delivered_total: u64,
    delivered_own: u64,
    first_delivery: Option<SimTime>,
    last_delivery: Option<SimTime>,
    views_seen: Vec<u64>,
    delivery_log: Vec<(MemberId, u64)>,
}

impl std::fmt::Debug for AppProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppProcess")
            .field("member", &self.member)
            .field("sent", &self.sent)
            .field("delivered_total", &self.delivered_total)
            .finish()
    }
}

impl AppProcess {
    /// Creates an application process for `member`, talking to the local
    /// middleware process `middleware`, generating the given workload.
    pub fn new(member: MemberId, middleware: ProcessId, config: TrafficConfig) -> Self {
        let rng = DetRng::new(config.arrival_seed).derive(u64::from(member.0));
        Self {
            member,
            middleware,
            invocation: InvocationService::new(),
            pacer: ArrivalPacer::with_rng(config.arrival, config.interval, rng),
            gate: AdmissionGate::new(config.clients, config.max_in_flight, config.admission),
            config,
            offered: 0,
            sent: 0,
            sent_at: BTreeMap::new(),
            client_of: BTreeMap::new(),
            batch: Vec::new(),
            latencies: LatencyRecorder::new(),
            delivered_total: 0,
            delivered_own: 0,
            first_delivery: None,
            last_delivery: None,
            views_seen: Vec::new(),
            delivery_log: Vec::new(),
        }
    }

    /// The member identity of this application.
    pub fn member(&self) -> MemberId {
        self.member
    }

    /// Messages multicast so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Total deliveries received (own and others').
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Deliveries of this application's own multicasts.
    pub fn delivered_own(&self) -> u64 {
        self.delivered_own
    }

    /// Ordering latencies of this application's own messages.
    pub fn latencies(&self) -> &LatencyRecorder {
        &self.latencies
    }

    /// Time of the first delivery received, if any.
    pub fn first_delivery(&self) -> Option<SimTime> {
        self.first_delivery
    }

    /// Time of the last delivery received, if any.
    pub fn last_delivery(&self) -> Option<SimTime> {
        self.last_delivery
    }

    /// View numbers delivered to this application.
    pub fn views_seen(&self) -> &[u64] {
        &self.views_seen
    }

    /// The sequence of deliveries received, as `(origin member, origin seq)`
    /// pairs in delivery order — used by integration tests to check that all
    /// applications observe the same total order.
    pub fn delivery_log(&self) -> &[(MemberId, u64)] {
        &self.delivery_log
    }

    /// The admission counters of this generator's gate.
    pub fn load_stats(&self) -> LoadStats {
        self.gate.stats()
    }

    /// One tick of the arrival process: offer a request to the admission
    /// gate, buffer it if admitted, and re-arm the arrival timer.
    fn next_arrival(&mut self, ctx: &mut dyn Context) {
        if self.offered >= self.config.messages {
            return;
        }
        self.offered += 1;
        if let Some(client) = self.gate.arrive() {
            self.enqueue(ctx, client);
        }
        if self.offered < self.config.messages {
            ctx.set_timer(self.pacer.next_gap(), TIMER_SEND);
        }
    }

    /// Buffers one admitted request into the open batch, flushing when the
    /// batch is full (a fresh batch arms the linger timer instead).
    fn enqueue(&mut self, ctx: &mut dyn Context, client: u32) {
        let seq = self.sent;
        self.sent += 1;
        let payload = build_payload(self.member, seq, self.config.payload_size);
        self.sent_at.insert(seq, ctx.now());
        self.client_of.insert(seq, client);
        self.batch.push((seq, payload));
        if self.batch.len() as u32 >= self.config.batch_max {
            ctx.cancel_timer(TIMER_FLUSH);
            self.flush(ctx);
        } else if self.batch.len() == 1 {
            ctx.set_timer(self.config.batch_linger, TIMER_FLUSH);
        }
    }

    /// Multicasts the open batch as one GC submission.
    fn flush(&mut self, ctx: &mut dyn Context) {
        if self.batch.is_empty() {
            return;
        }
        let payload = if self.config.batch_max == 1 {
            self.batch.pop().expect("one buffered request").1
        } else {
            let items: Vec<Vec<u8>> = self.batch.drain(..).map(|(_, p)| p).collect();
            build_batch_payload(&items)
        };
        let request = self.invocation.marshal(self.config.service, payload);
        ctx.send(self.middleware, request);
    }

    /// Accounts one delivered application payload (a whole delivery in
    /// unbatched mode, one expanded item in batched mode).
    fn deliver_item(&mut self, ctx: &mut dyn Context, now: SimTime, item: &[u8]) {
        let Some((member, seq)) = parse_payload(item) else {
            return;
        };
        self.delivery_log.push((member, seq));
        if member != self.member {
            return;
        }
        self.delivered_own += 1;
        if let Some(sent_at) = self.sent_at.remove(&seq) {
            self.latencies.record_span(sent_at, now);
            if let Some(client) = self.client_of.remove(&seq) {
                if self.gate.complete(client) {
                    // The completion hands its slot to a blocked arrival.
                    self.enqueue(ctx, client);
                }
            }
        }
    }
}

impl Actor for AppProcess {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if self.config.messages > 0 {
            ctx.set_timer(self.config.start_delay, TIMER_SEND);
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Context, timer: TimerId) {
        if timer == TIMER_SEND {
            self.next_arrival(ctx);
        } else if timer == TIMER_FLUSH {
            self.flush(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
        if from != self.middleware {
            return;
        }
        match self.invocation.unmarshal(&payload) {
            Ok(Upcall::Deliver(delivery)) => {
                self.delivered_total += 1;
                let now = ctx.now();
                self.first_delivery.get_or_insert(now);
                self.last_delivery = Some(now);
                if self.config.batch_max > 1 {
                    // Batched payloads expand into per-request deliveries;
                    // the total count reflects requests, not multicasts.
                    let items = parse_batch_payload(&delivery.payload).unwrap_or_default();
                    self.delivered_total += (items.len() as u64).saturating_sub(1);
                    for item in items {
                        self.deliver_item(ctx, now, &item);
                    }
                } else {
                    self.delivery_log.push((delivery.origin, delivery.seq));
                    if let Some((member, seq)) = parse_payload(&delivery.payload) {
                        if member == self.member {
                            self.delivered_own += 1;
                            if let Some(sent_at) = self.sent_at.remove(&seq) {
                                self.latencies.record_span(sent_at, now);
                                if let Some(client) = self.client_of.remove(&seq) {
                                    if self.gate.complete(client) {
                                        self.enqueue(ctx, client);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Ok(Upcall::View(view)) => {
                self.views_seen.push(view.view_id);
            }
            Err(_) => {
                // A malformed upcall can only come from faulty middleware; at
                // the application level we simply ignore it (the replication
                // layer masks it).
            }
        }
    }

    fn name(&self) -> String {
        format!("app-{}", self.member.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::AppDeliver;
    use fs_common::codec::Wire;
    use fs_simnet::actor::TestContext;

    fn config(messages: u64) -> TrafficConfig {
        TrafficConfig::paper_default().with_messages(messages)
    }

    #[test]
    fn payload_round_trip_and_padding() {
        let p = build_payload(MemberId(3), 41, 100);
        assert_eq!(p.len(), 100);
        assert_eq!(parse_payload(&p), Some((MemberId(3), 41)));
        // A payload smaller than the header still carries the header.
        let tiny = build_payload(MemberId(1), 2, 3);
        assert!(tiny.len() >= 12);
        assert!(parse_payload(&[1, 2]).is_none());
    }

    #[test]
    fn app_sends_paced_messages() {
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), config(3));
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        assert_eq!(ctx.timers_set.len(), 1);
        app.on_timer(&mut ctx, TIMER_SEND);
        app.on_timer(&mut ctx, TIMER_SEND);
        app.on_timer(&mut ctx, TIMER_SEND);
        // Only three messages are sent even if the timer fires again.
        app.on_timer(&mut ctx, TIMER_SEND);
        assert_eq!(app.sent(), 3);
        assert_eq!(ctx.sent_to(ProcessId(5)).len(), 3);
    }

    #[test]
    fn latency_is_recorded_for_own_deliveries_only() {
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), config(1));
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        app.on_timer(&mut ctx, TIMER_SEND);

        ctx.advance(SimDuration::from_millis(30));
        // Own message comes back.
        let own = Upcall::Deliver(AppDeliver {
            origin: MemberId(0),
            seq: 0,
            order: 0,
            service: ServiceKind::SymmetricTotal,
            payload: build_payload(MemberId(0), 0, 3),
        });
        app.on_message(&mut ctx, ProcessId(5), own.to_wire());
        // Someone else's message too.
        let other = Upcall::Deliver(AppDeliver {
            origin: MemberId(1),
            seq: 0,
            order: 1,
            service: ServiceKind::SymmetricTotal,
            payload: build_payload(MemberId(1), 0, 3),
        });
        app.on_message(&mut ctx, ProcessId(5), other.to_wire());

        assert_eq!(app.delivered_total(), 2);
        assert_eq!(app.delivered_own(), 1);
        assert_eq!(app.latencies().len(), 1);
        assert_eq!(app.latencies().samples()[0], SimDuration::from_millis(30));
        assert!(app.first_delivery().is_some());
        assert!(app.last_delivery().is_some());
    }

    #[test]
    fn view_upcalls_are_tracked() {
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), config(0));
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        assert!(ctx.timers_set.is_empty());
        let view = Upcall::View(crate::message::ViewDeliver {
            view_id: 2,
            members: vec![MemberId(0)],
        });
        app.on_message(&mut ctx, ProcessId(5), view.to_wire());
        assert_eq!(app.views_seen(), &[2]);
    }

    #[test]
    fn batch_payload_round_trip() {
        let items = vec![
            build_payload(MemberId(0), 0, 3),
            build_payload(MemberId(0), 1, 3),
        ];
        let packed = build_batch_payload(&items);
        let unpacked = parse_batch_payload(&packed).unwrap();
        assert_eq!(unpacked.len(), 2);
        assert_eq!(&unpacked[0][..], &items[0][..]);
        assert_eq!(&unpacked[1][..], &items[1][..]);
        assert!(parse_batch_payload(&[7]).is_none());
    }

    #[test]
    fn full_batch_flushes_in_one_multicast() {
        let cfg = config(4).with_batching(2, SimDuration::from_millis(1));
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), cfg);
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        app.on_timer(&mut ctx, TIMER_SEND);
        // First request opens a batch: nothing multicast yet.
        assert_eq!(ctx.sent_to(ProcessId(5)).len(), 0);
        app.on_timer(&mut ctx, TIMER_SEND);
        // Second request fills the batch: one multicast for two requests.
        assert_eq!(ctx.sent_to(ProcessId(5)).len(), 1);
        assert_eq!(app.sent(), 2);

        // The batched delivery expands into two per-request deliveries.
        let delivered = Upcall::Deliver(AppDeliver {
            origin: MemberId(0),
            seq: 0,
            order: 0,
            service: ServiceKind::SymmetricTotal,
            payload: build_batch_payload(&[
                build_payload(MemberId(0), 0, 3),
                build_payload(MemberId(0), 1, 3),
            ]),
        });
        app.on_message(&mut ctx, ProcessId(5), delivered.to_wire());
        assert_eq!(app.delivered_total(), 2);
        assert_eq!(app.delivered_own(), 2);
        assert_eq!(app.latencies().len(), 2);
        assert_eq!(app.delivery_log(), &[(MemberId(0), 0), (MemberId(0), 1)]);
    }

    #[test]
    fn lingering_batch_flushes_on_timer() {
        let cfg = config(4).with_batching(8, SimDuration::from_micros(200));
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), cfg);
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        app.on_timer(&mut ctx, TIMER_SEND);
        assert_eq!(ctx.sent_to(ProcessId(5)).len(), 0, "batch still open");
        app.on_timer(&mut ctx, TIMER_FLUSH);
        assert_eq!(ctx.sent_to(ProcessId(5)).len(), 1, "linger closed it");
        app.on_timer(&mut ctx, TIMER_FLUSH);
        assert_eq!(ctx.sent_to(ProcessId(5)).len(), 1, "empty flush is a no-op");
    }

    #[test]
    fn admission_gate_sheds_over_the_bound() {
        let cfg = config(3).with_admission(1, 1, Admission::Shed);
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), cfg);
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        app.on_timer(&mut ctx, TIMER_SEND);
        app.on_timer(&mut ctx, TIMER_SEND);
        app.on_timer(&mut ctx, TIMER_SEND);
        // Only the first arrival was submitted; the rest were shed.
        assert_eq!(app.sent(), 1);
        let stats = app.load_stats();
        assert_eq!((stats.offered, stats.submitted, stats.shed), (3, 1, 2));

        // Its delivery completes the request and frees the slot.
        let own = Upcall::Deliver(AppDeliver {
            origin: MemberId(0),
            seq: 0,
            order: 0,
            service: ServiceKind::SymmetricTotal,
            payload: build_payload(MemberId(0), 0, 3),
        });
        app.on_message(&mut ctx, ProcessId(5), own.to_wire());
        assert_eq!(app.load_stats().completed, 1);
    }

    #[test]
    fn poisson_arrivals_rearm_with_varying_gaps() {
        let cfg = config(3).with_arrival(Arrival::Poisson, 11);
        let mut app = AppProcess::new(MemberId(2), ProcessId(5), cfg);
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        app.on_timer(&mut ctx, TIMER_SEND);
        app.on_timer(&mut ctx, TIMER_SEND);
        assert_eq!(app.sent(), 2);
        // start_delay + two pacer gaps; the pacer gaps differ from the fixed
        // interval and (almost surely) from each other.
        let gaps: Vec<_> = ctx.timers_set.iter().map(|(d, _)| *d).collect();
        assert_eq!(gaps.len(), 3);
        assert_ne!(gaps[1], gaps[2]);
    }

    #[test]
    fn messages_from_strangers_are_ignored() {
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), config(1));
        let mut ctx = TestContext::new(ProcessId(1));
        let junk = Upcall::Deliver(AppDeliver {
            origin: MemberId(0),
            seq: 0,
            order: 0,
            service: ServiceKind::SymmetricTotal,
            payload: vec![],
        });
        app.on_message(&mut ctx, ProcessId(99), junk.to_wire());
        assert_eq!(app.delivered_total(), 0);
        // Malformed upcalls from the right middleware are also ignored.
        app.on_message(&mut ctx, ProcessId(5), vec![0xff, 0xff].into());
        assert_eq!(app.delivered_total(), 0);
        assert_eq!(app.name(), "app-0");
    }
}
