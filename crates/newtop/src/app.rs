//! A generic application process (workload generator + measurement probe).
//!
//! [`AppProcess`] plays the role of the `A_i` processes in the paper's
//! experiments (§4): it multicasts a configurable number of fixed-size
//! messages at a regular interval through its local middleware process, and
//! records (a) the ordering latency of its own messages (send → total-order
//! delivery back to itself) and (b) the time of every delivery it receives,
//! from which the benchmark harness derives the throughput figures.
//!
//! The same actor drives both baselines: point it at a crash-tolerant
//! [`crate::nso::NsoActor`] for NewTOP, or at a fail-signal interceptor for
//! FS-NewTOP.

use std::collections::BTreeMap;

use fs_common::codec::{Decoder, Encoder};
use fs_common::id::{MemberId, ProcessId};
use fs_common::time::{SimDuration, SimTime};
use fs_common::Bytes;
use fs_simnet::actor::{Actor, Context, TimerId};
use fs_simnet::trace::LatencyRecorder;

use crate::invocation::InvocationService;
use crate::message::{ServiceKind, Upcall};

/// Timer used to pace the workload.
pub const TIMER_SEND: TimerId = TimerId(100);

/// Workload configuration for one application process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// The NewTOP service to request.
    pub service: ServiceKind,
    /// Payload size in bytes (the paper uses 3 bytes for "0k" and up to 10 kB).
    pub payload_size: usize,
    /// How many messages to multicast in total.
    pub messages: u64,
    /// Interval between consecutive multicasts.
    pub interval: SimDuration,
    /// Delay before the first multicast (lets the deployment settle).
    pub start_delay: SimDuration,
}

impl TrafficConfig {
    /// The paper's latency/throughput workload: 1000 small messages per
    /// member at a regular interval, symmetric total order.
    pub fn paper_default() -> Self {
        Self {
            service: ServiceKind::SymmetricTotal,
            payload_size: 3,
            messages: 1000,
            interval: SimDuration::from_millis(40),
            start_delay: SimDuration::from_millis(10),
        }
    }

    /// Returns a copy with a different message count (useful for tests).
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Returns a copy with a different payload size.
    pub fn with_payload_size(mut self, payload_size: usize) -> Self {
        self.payload_size = payload_size;
        self
    }

    /// Returns a copy with a different send interval.
    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self
    }

    /// Returns a copy with a different service kind.
    pub fn with_service(mut self, service: ServiceKind) -> Self {
        self.service = service;
        self
    }
}

/// Builds the application payload: the sender's member id and application
/// sequence number, padded to the configured size.
pub fn build_payload(member: MemberId, seq: u64, size: usize) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(size + 12);
    enc.put_member(member);
    enc.put_u64(seq);
    let mut bytes = enc.finish_vec();
    if bytes.len() < size {
        bytes.resize(size, 0xa5);
    }
    bytes
}

/// Parses the header of an application payload built by [`build_payload`].
pub fn parse_payload(bytes: &[u8]) -> Option<(MemberId, u64)> {
    let mut dec = Decoder::new(bytes);
    let member = dec.get_member().ok()?;
    let seq = dec.get_u64().ok()?;
    Some((member, seq))
}

/// The application process / workload generator.
pub struct AppProcess {
    member: MemberId,
    middleware: ProcessId,
    config: TrafficConfig,
    invocation: InvocationService,
    sent: u64,
    sent_at: BTreeMap<u64, SimTime>,
    latencies: LatencyRecorder,
    delivered_total: u64,
    delivered_own: u64,
    first_delivery: Option<SimTime>,
    last_delivery: Option<SimTime>,
    views_seen: Vec<u64>,
    delivery_log: Vec<(MemberId, u64)>,
}

impl std::fmt::Debug for AppProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppProcess")
            .field("member", &self.member)
            .field("sent", &self.sent)
            .field("delivered_total", &self.delivered_total)
            .finish()
    }
}

impl AppProcess {
    /// Creates an application process for `member`, talking to the local
    /// middleware process `middleware`, generating the given workload.
    pub fn new(member: MemberId, middleware: ProcessId, config: TrafficConfig) -> Self {
        Self {
            member,
            middleware,
            config,
            invocation: InvocationService::new(),
            sent: 0,
            sent_at: BTreeMap::new(),
            latencies: LatencyRecorder::new(),
            delivered_total: 0,
            delivered_own: 0,
            first_delivery: None,
            last_delivery: None,
            views_seen: Vec::new(),
            delivery_log: Vec::new(),
        }
    }

    /// The member identity of this application.
    pub fn member(&self) -> MemberId {
        self.member
    }

    /// Messages multicast so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Total deliveries received (own and others').
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Deliveries of this application's own multicasts.
    pub fn delivered_own(&self) -> u64 {
        self.delivered_own
    }

    /// Ordering latencies of this application's own messages.
    pub fn latencies(&self) -> &LatencyRecorder {
        &self.latencies
    }

    /// Time of the first delivery received, if any.
    pub fn first_delivery(&self) -> Option<SimTime> {
        self.first_delivery
    }

    /// Time of the last delivery received, if any.
    pub fn last_delivery(&self) -> Option<SimTime> {
        self.last_delivery
    }

    /// View numbers delivered to this application.
    pub fn views_seen(&self) -> &[u64] {
        &self.views_seen
    }

    /// The sequence of deliveries received, as `(origin member, origin seq)`
    /// pairs in delivery order — used by integration tests to check that all
    /// applications observe the same total order.
    pub fn delivery_log(&self) -> &[(MemberId, u64)] {
        &self.delivery_log
    }

    fn send_next(&mut self, ctx: &mut dyn Context) {
        if self.sent >= self.config.messages {
            return;
        }
        let seq = self.sent;
        self.sent += 1;
        let payload = build_payload(self.member, seq, self.config.payload_size);
        let request = self.invocation.marshal(self.config.service, payload);
        self.sent_at.insert(seq, ctx.now());
        ctx.send(self.middleware, request);
        if self.sent < self.config.messages {
            ctx.set_timer(self.config.interval, TIMER_SEND);
        }
    }
}

impl Actor for AppProcess {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if self.config.messages > 0 {
            ctx.set_timer(self.config.start_delay, TIMER_SEND);
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Context, timer: TimerId) {
        if timer == TIMER_SEND {
            self.send_next(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
        if from != self.middleware {
            return;
        }
        match self.invocation.unmarshal(&payload) {
            Ok(Upcall::Deliver(delivery)) => {
                self.delivered_total += 1;
                self.delivery_log.push((delivery.origin, delivery.seq));
                let now = ctx.now();
                self.first_delivery.get_or_insert(now);
                self.last_delivery = Some(now);
                if let Some((member, seq)) = parse_payload(&delivery.payload) {
                    if member == self.member {
                        self.delivered_own += 1;
                        if let Some(sent_at) = self.sent_at.remove(&seq) {
                            self.latencies.record_span(sent_at, now);
                        }
                    }
                }
            }
            Ok(Upcall::View(view)) => {
                self.views_seen.push(view.view_id);
            }
            Err(_) => {
                // A malformed upcall can only come from faulty middleware; at
                // the application level we simply ignore it (the replication
                // layer masks it).
            }
        }
    }

    fn name(&self) -> String {
        format!("app-{}", self.member.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::AppDeliver;
    use fs_common::codec::Wire;
    use fs_simnet::actor::TestContext;

    fn config(messages: u64) -> TrafficConfig {
        TrafficConfig::paper_default().with_messages(messages)
    }

    #[test]
    fn payload_round_trip_and_padding() {
        let p = build_payload(MemberId(3), 41, 100);
        assert_eq!(p.len(), 100);
        assert_eq!(parse_payload(&p), Some((MemberId(3), 41)));
        // A payload smaller than the header still carries the header.
        let tiny = build_payload(MemberId(1), 2, 3);
        assert!(tiny.len() >= 12);
        assert!(parse_payload(&[1, 2]).is_none());
    }

    #[test]
    fn app_sends_paced_messages() {
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), config(3));
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        assert_eq!(ctx.timers_set.len(), 1);
        app.on_timer(&mut ctx, TIMER_SEND);
        app.on_timer(&mut ctx, TIMER_SEND);
        app.on_timer(&mut ctx, TIMER_SEND);
        // Only three messages are sent even if the timer fires again.
        app.on_timer(&mut ctx, TIMER_SEND);
        assert_eq!(app.sent(), 3);
        assert_eq!(ctx.sent_to(ProcessId(5)).len(), 3);
    }

    #[test]
    fn latency_is_recorded_for_own_deliveries_only() {
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), config(1));
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        app.on_timer(&mut ctx, TIMER_SEND);

        ctx.advance(SimDuration::from_millis(30));
        // Own message comes back.
        let own = Upcall::Deliver(AppDeliver {
            origin: MemberId(0),
            seq: 0,
            order: 0,
            service: ServiceKind::SymmetricTotal,
            payload: build_payload(MemberId(0), 0, 3),
        });
        app.on_message(&mut ctx, ProcessId(5), own.to_wire());
        // Someone else's message too.
        let other = Upcall::Deliver(AppDeliver {
            origin: MemberId(1),
            seq: 0,
            order: 1,
            service: ServiceKind::SymmetricTotal,
            payload: build_payload(MemberId(1), 0, 3),
        });
        app.on_message(&mut ctx, ProcessId(5), other.to_wire());

        assert_eq!(app.delivered_total(), 2);
        assert_eq!(app.delivered_own(), 1);
        assert_eq!(app.latencies().len(), 1);
        assert_eq!(app.latencies().samples()[0], SimDuration::from_millis(30));
        assert!(app.first_delivery().is_some());
        assert!(app.last_delivery().is_some());
    }

    #[test]
    fn view_upcalls_are_tracked() {
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), config(0));
        let mut ctx = TestContext::new(ProcessId(1));
        app.on_start(&mut ctx);
        assert!(ctx.timers_set.is_empty());
        let view = Upcall::View(crate::message::ViewDeliver {
            view_id: 2,
            members: vec![MemberId(0)],
        });
        app.on_message(&mut ctx, ProcessId(5), view.to_wire());
        assert_eq!(app.views_seen(), &[2]);
    }

    #[test]
    fn messages_from_strangers_are_ignored() {
        let mut app = AppProcess::new(MemberId(0), ProcessId(5), config(1));
        let mut ctx = TestContext::new(ProcessId(1));
        let junk = Upcall::Deliver(AppDeliver {
            origin: MemberId(0),
            seq: 0,
            order: 0,
            service: ServiceKind::SymmetricTotal,
            payload: vec![],
        });
        app.on_message(&mut ctx, ProcessId(99), junk.to_wire());
        assert_eq!(app.delivered_total(), 0);
        // Malformed upcalls from the right middleware are also ignored.
        app.on_message(&mut ctx, ProcessId(5), vec![0xff, 0xff].into());
        assert_eq!(app.delivered_total(), 0);
        assert_eq!(app.name(), "app-0");
    }
}
