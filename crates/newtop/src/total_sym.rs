//! The symmetric total-order protocol.
//!
//! This is NewTOP's "significantly message intensive" service (§4): a message
//! is ordered *only after it has been logically acknowledged by all members
//! of the group*.  The implementation is the classic symmetric (sequencer-
//! less) protocol built on Lamport clocks over FIFO channels:
//!
//! * every `Data` message carries its origin's Lamport timestamp;
//! * every member multicasts an `Ack` (carrying its own, already bumped,
//!   clock) for every `Data` it receives;
//! * a message is delivered when it is the pending message with the smallest
//!   `(timestamp, origin, seq)` key *and* it has been acknowledged by every
//!   member of the current view.
//!
//! With per-sender FIFO channels (the middleware runs over TCP/IIOP) the
//! all-ack condition guarantees that no message that should be ordered
//! earlier can still arrive, so delivery order is identical at all correct
//! members.

use std::collections::{BTreeMap, BTreeSet};

use fs_common::id::MemberId;

use crate::message::{AppDeliver, GcMessage, ServiceKind};
use crate::view::View;

/// The key under which a pending message is ordered.
type OrderKey = (u64, MemberId, u64); // (lamport timestamp, origin, per-origin seq)

#[derive(Debug, Clone)]
struct Pending {
    payload: Vec<u8>,
    acks: BTreeSet<MemberId>,
}

/// Per-member state of the symmetric total-order protocol.
#[derive(Debug, Clone)]
pub struct SymmetricOrder {
    me: MemberId,
    lamport: u64,
    next_seq: u64,
    pending: BTreeMap<OrderKey, Pending>,
    /// Acks received before their data message, keyed by `(origin, seq)`.
    early_acks: BTreeMap<(MemberId, u64), BTreeSet<MemberId>>,
    delivered: u64,
}

impl SymmetricOrder {
    /// Creates the protocol state for member `me`.
    pub fn new(me: MemberId) -> Self {
        Self {
            me,
            lamport: 0,
            next_seq: 0,
            pending: BTreeMap::new(),
            early_acks: BTreeMap::new(),
            delivered: 0,
        }
    }

    /// The current Lamport clock (exposed for tests).
    pub fn clock(&self) -> u64 {
        self.lamport
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Number of messages still awaiting order.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Multicasts `payload`: returns the `Data` message to send to every
    /// other view member, plus any deliveries that become possible
    /// immediately (e.g. in a singleton view).
    pub fn multicast(&mut self, payload: Vec<u8>, view: &View) -> (GcMessage, Vec<AppDeliver>) {
        self.lamport += 1;
        let ts = self.lamport;
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut acks = BTreeSet::new();
        acks.insert(self.me);
        self.pending.insert(
            (ts, self.me, seq),
            Pending {
                payload: payload.clone(),
                acks,
            },
        );
        let data = GcMessage::Data {
            origin: self.me,
            seq,
            ts,
            vc: Vec::new(),
            service: ServiceKind::SymmetricTotal,
            payload,
        };
        (data, self.try_deliver(view))
    }

    /// Handles a `Data` message from `origin`; returns the `Ack` to
    /// multicast to every view member (including the origin) and any
    /// deliveries that become possible.
    pub fn on_data(
        &mut self,
        origin: MemberId,
        seq: u64,
        ts: u64,
        payload: Vec<u8>,
        view: &View,
    ) -> (GcMessage, Vec<AppDeliver>) {
        self.lamport = self.lamport.max(ts) + 1;
        let entry = self
            .pending
            .entry((ts, origin, seq))
            .or_insert_with(|| Pending {
                payload,
                acks: BTreeSet::new(),
            });
        entry.acks.insert(origin); // the data message is the origin's own ack
        entry.acks.insert(self.me); // our ack, which we are about to multicast
        let ack = GcMessage::Ack {
            origin,
            seq,
            from: self.me,
            clock: self.lamport,
        };
        (ack, self.try_deliver(view))
    }

    /// Handles an `Ack`; returns any deliveries that become possible.
    pub fn on_ack(
        &mut self,
        origin: MemberId,
        seq: u64,
        from: MemberId,
        clock: u64,
        view: &View,
    ) -> Vec<AppDeliver> {
        self.lamport = self.lamport.max(clock);
        // Find the pending entry for (origin, seq).  The ack does not carry
        // the original timestamp, so locate it by origin and seq.
        if let Some(key) = self
            .pending
            .keys()
            .find(|(_, o, s)| *o == origin && *s == seq)
            .copied()
        {
            self.pending
                .get_mut(&key)
                .expect("key exists")
                .acks
                .insert(from);
        } else {
            // Ack arrived before the data (possible across different FIFO
            // channels): remember it by creating a placeholder entry keyed by
            // the ack's information once data arrives.  We keep it simple and
            // stash it under a synthetic entry that the data will merge into.
            // To stay deterministic we simply record nothing: the eventual
            // data message will be acked by `from` again only if `from`
            // retransmits.  In practice the all-ack condition is still met
            // because every member acks every data message it receives, and
            // FIFO ensures the origin's data precedes any ack of it from the
            // same sender; acks from third parties may only arrive early when
            // the data is still in flight, in which case delivery simply
            // waits for the origin's data and the next ack.
            //
            // To avoid losing early acks entirely we buffer them.
            self.early_acks_insert(origin, seq, from);
        }
        self.try_deliver(view)
    }

    fn early_acks_insert(&mut self, origin: MemberId, seq: u64, from: MemberId) {
        self.early_acks
            .entry((origin, seq))
            .or_default()
            .insert(from);
    }

    /// Called after a view change: acknowledgements are now required only
    /// from the surviving members, so some pending messages may become
    /// deliverable.
    pub fn on_view_change(&mut self, view: &View) -> Vec<AppDeliver> {
        self.try_deliver(view)
    }

    fn try_deliver(&mut self, view: &View) -> Vec<AppDeliver> {
        let mut out = Vec::new();
        loop {
            // Merge any buffered early acks into their pending entries.
            let keys: Vec<OrderKey> = self.pending.keys().copied().collect();
            for key in &keys {
                let (_, origin, seq) = *key;
                if let Some(early) = self.early_acks.remove(&(origin, seq)) {
                    self.pending
                        .get_mut(key)
                        .expect("key exists")
                        .acks
                        .extend(early);
                }
            }
            let Some((key, entry)) = self.pending.iter().next() else {
                break;
            };
            let fully_acked = view.members.iter().all(|m| entry.acks.contains(m));
            if !fully_acked {
                break;
            }
            let (ts, origin, seq) = *key;
            let payload = entry.payload.clone();
            self.pending.remove(&(ts, origin, seq));
            let order = self.delivered;
            self.delivered += 1;
            out.push(AppDeliver {
                origin,
                seq,
                order,
                service: ServiceKind::SymmetricTotal,
                payload,
            });
        }
        out
    }
}

impl SymmetricOrder {
    #[cfg(test)]
    fn early_acks_field(&self) -> &BTreeMap<(MemberId, u64), BTreeSet<MemberId>> {
        &self.early_acks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: u32) -> View {
        View::initial((0..n).map(MemberId))
    }

    /// Drives a full group of symmetric-order instances by hand, delivering
    /// every protocol message immediately (no reordering).
    struct Harness {
        view: View,
        members: Vec<SymmetricOrder>,
        delivered: Vec<Vec<AppDeliver>>,
    }

    impl Harness {
        fn new(n: u32) -> Self {
            Self {
                view: view(n),
                members: (0..n).map(|i| SymmetricOrder::new(MemberId(i))).collect(),
                delivered: (0..n).map(|_| Vec::new()).collect(),
            }
        }

        fn multicast(&mut self, sender: usize, payload: &[u8]) {
            let (data, dels) = self.members[sender].multicast(payload.to_vec(), &self.view);
            self.delivered[sender].extend(dels);
            let GcMessage::Data {
                origin,
                seq,
                ts,
                payload,
                ..
            } = data
            else {
                unreachable!()
            };
            // Deliver the data to every other member; collect their acks.
            let mut acks = Vec::new();
            for i in 0..self.members.len() {
                if i == sender {
                    continue;
                }
                let (ack, dels) =
                    self.members[i].on_data(origin, seq, ts, payload.clone(), &self.view);
                self.delivered[i].extend(dels);
                acks.push(ack);
            }
            // Deliver every ack to every member (including the origin).
            for ack in acks {
                let GcMessage::Ack {
                    origin,
                    seq,
                    from,
                    clock,
                } = ack
                else {
                    unreachable!()
                };
                for i in 0..self.members.len() {
                    if MemberId(i as u32) == from {
                        continue;
                    }
                    let dels = self.members[i].on_ack(origin, seq, from, clock, &self.view);
                    self.delivered[i].extend(dels);
                }
            }
        }

        fn orders(&self) -> Vec<Vec<(MemberId, u64)>> {
            self.delivered
                .iter()
                .map(|d| d.iter().map(|a| (a.origin, a.seq)).collect())
                .collect()
        }
    }

    #[test]
    fn singleton_group_delivers_immediately() {
        let mut s = SymmetricOrder::new(MemberId(0));
        let v = view(1);
        let (_, dels) = s.multicast(b"solo".to_vec(), &v);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].payload, b"solo");
        assert_eq!(dels[0].order, 0);
        assert_eq!(s.delivered_count(), 1);
    }

    #[test]
    fn two_members_agree_on_order() {
        let mut h = Harness::new(2);
        h.multicast(0, b"a");
        h.multicast(1, b"b");
        h.multicast(0, b"c");
        let orders = h.orders();
        assert_eq!(orders[0].len(), 3);
        assert_eq!(orders[0], orders[1]);
    }

    #[test]
    fn five_members_agree_under_interleaving() {
        let mut h = Harness::new(5);
        for round in 0..4 {
            for sender in 0..5 {
                h.multicast(sender, format!("m{round}-{sender}").as_bytes());
            }
        }
        let orders = h.orders();
        for o in &orders[1..] {
            assert_eq!(o, &orders[0]);
        }
        assert_eq!(orders[0].len(), 20);
        // Order indices are consecutive.
        let last = h.delivered[0].last().unwrap();
        assert_eq!(last.order, 19);
    }

    #[test]
    fn delivery_waits_for_all_acks() {
        let v = view(3);
        let mut a = SymmetricOrder::new(MemberId(0));
        let (data, dels) = a.multicast(b"x".to_vec(), &v);
        assert!(dels.is_empty());
        let GcMessage::Data {
            origin, seq, ts, ..
        } = data
        else {
            unreachable!()
        };
        // Only member 1 acks: still not deliverable.
        let dels = a.on_ack(origin, seq, MemberId(1), ts + 1, &v);
        assert!(dels.is_empty());
        assert_eq!(a.pending_count(), 1);
        // Member 2 acks: now deliverable.
        let dels = a.on_ack(origin, seq, MemberId(2), ts + 1, &v);
        assert_eq!(dels.len(), 1);
        assert_eq!(a.pending_count(), 0);
    }

    #[test]
    fn view_change_releases_messages_waiting_on_the_removed_member() {
        let v = view(3);
        let mut a = SymmetricOrder::new(MemberId(0));
        let (data, _) = a.multicast(b"x".to_vec(), &v);
        let GcMessage::Data {
            origin, seq, ts, ..
        } = data
        else {
            unreachable!()
        };
        // Member 1 acks; member 2 has crashed and never will.
        a.on_ack(origin, seq, MemberId(1), ts + 1, &v);
        assert_eq!(a.delivered_count(), 0);
        let v1 = v.without(MemberId(2)).unwrap();
        let dels = a.on_view_change(&v1);
        assert_eq!(dels.len(), 1);
    }

    #[test]
    fn early_ack_before_data_is_not_lost() {
        let v = view(3);
        let mut a = SymmetricOrder::new(MemberId(0));
        // An ack for a message we have not yet received.
        let dels = a.on_ack(MemberId(1), 0, MemberId(2), 5, &v);
        assert!(dels.is_empty());
        assert!(!a.early_acks_field().is_empty());
        // The data then arrives; together with our own ack and the origin's
        // implicit ack, the early ack completes the set.
        let (_ack, dels) = a.on_data(MemberId(1), 0, 3, b"x".to_vec(), &v);
        assert_eq!(dels.len(), 1);
        assert!(a.early_acks_field().is_empty());
    }

    #[test]
    fn lamport_clock_is_monotone() {
        let v = view(2);
        let mut a = SymmetricOrder::new(MemberId(0));
        let c0 = a.clock();
        a.multicast(b"x".to_vec(), &v);
        assert!(a.clock() > c0);
        a.on_data(MemberId(1), 0, 100, b"y".to_vec(), &v);
        assert!(a.clock() > 100);
    }
}
