//! The timeout-based failure suspector used by crash-tolerant NewTOP.
//!
//! §3.1: "The NewTOP group membership object … makes use of a failure
//! suspector module which periodically 'pings' remote NSO GCs and generates
//! suspicions based on a timeout mechanism."  Because message delays over an
//! asynchronous network have no known bound, these suspicions can be *false*
//! — the root cause of unnecessary group splitting that FS-NewTOP eliminates
//! by replacing this module with a fail-signal-driven one.
//!
//! The suspector is deliberately time-driven and therefore lives in the
//! hosting adapter (the NSO actor), not inside the deterministic GC machine.

use std::collections::{BTreeMap, BTreeSet};

use fs_common::id::MemberId;
use fs_common::time::{SimDuration, SimTime};

/// Configuration of the ping-based suspector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspectorConfig {
    /// Whether the suspector runs at all (disabled in the latency benchmarks
    /// to match the paper's failure-free set-up, and always disabled in
    /// FS-NewTOP).
    pub enabled: bool,
    /// How often to ping every peer.
    pub interval: SimDuration,
    /// How long to wait for a pong before suspecting the peer.
    pub timeout: SimDuration,
}

impl SuspectorConfig {
    /// The paper's experimental setting: "large timeouts" on a lightly
    /// loaded LAN so that false suspicions never occur.
    pub fn large_timeouts() -> Self {
        Self {
            enabled: true,
            interval: SimDuration::from_secs(2),
            timeout: SimDuration::from_secs(10),
        }
    }

    /// An aggressive setting with small timeouts, prone to false suspicions
    /// when delays spike (used by the suspicion ablation, A2 in DESIGN.md).
    pub fn aggressive(timeout: SimDuration) -> Self {
        Self {
            enabled: true,
            interval: SimDuration::from_millis(50),
            timeout,
        }
    }

    /// A disabled suspector.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            interval: SimDuration::MAX,
            timeout: SimDuration::MAX,
        }
    }
}

impl Default for SuspectorConfig {
    fn default() -> Self {
        Self::large_timeouts()
    }
}

/// What the suspector wants done after a tick.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SuspectorActions {
    /// Peers to ping now, with the nonce to use.
    pub pings: Vec<(MemberId, u64)>,
    /// Peers to report as suspected.
    pub suspicions: Vec<MemberId>,
}

/// The ping/timeout failure suspector.
#[derive(Debug, Clone)]
pub struct PingSuspector {
    config: SuspectorConfig,
    /// Outstanding pings: peer → (nonce, deadline).
    outstanding: BTreeMap<MemberId, (u64, SimTime)>,
    /// Peers already reported as suspected (reported once only).
    suspected: BTreeSet<MemberId>,
    next_nonce: u64,
}

impl PingSuspector {
    /// Creates a suspector with the given configuration.
    pub fn new(config: SuspectorConfig) -> Self {
        Self {
            config,
            outstanding: BTreeMap::new(),
            suspected: BTreeSet::new(),
            next_nonce: 0,
        }
    }

    /// The configured ping interval (how often the adapter should call
    /// [`PingSuspector::tick`]).
    pub fn interval(&self) -> SimDuration {
        self.config.interval
    }

    /// Whether the suspector is enabled.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The peers reported as suspected so far.
    pub fn suspected(&self) -> &BTreeSet<MemberId> {
        &self.suspected
    }

    /// Runs one suspector round at time `now` over the given peers
    /// (the current view, excluding the local member).
    pub fn tick(&mut self, now: SimTime, peers: &[MemberId]) -> SuspectorActions {
        let mut actions = SuspectorActions::default();
        if !self.config.enabled {
            return actions;
        }
        for &peer in peers {
            if self.suspected.contains(&peer) {
                continue;
            }
            match self.outstanding.get(&peer) {
                Some(&(_nonce, deadline)) if now >= deadline => {
                    self.suspected.insert(peer);
                    self.outstanding.remove(&peer);
                    actions.suspicions.push(peer);
                }
                Some(_) => {
                    // Ping still outstanding and within its deadline: wait.
                }
                None => {
                    let nonce = self.next_nonce;
                    self.next_nonce += 1;
                    self.outstanding
                        .insert(peer, (nonce, now + self.config.timeout));
                    actions.pings.push((peer, nonce));
                }
            }
        }
        actions
    }

    /// Records a pong from `peer`; clears the outstanding ping if the nonce
    /// matches, so the peer can be pinged afresh next round.
    pub fn on_pong(&mut self, peer: MemberId, nonce: u64) {
        if let Some(&(expected, _)) = self.outstanding.get(&peer) {
            if expected == nonce {
                self.outstanding.remove(&peer);
            }
        }
    }

    /// Marks a peer as already-suspected without going through a timeout
    /// (used when a suspicion arrives from elsewhere, e.g. gossip).
    pub fn mark_suspected(&mut self, peer: MemberId) {
        self.suspected.insert(peer);
        self.outstanding.remove(&peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(n: u32) -> Vec<MemberId> {
        (1..=n).map(MemberId).collect()
    }

    #[test]
    fn disabled_suspector_does_nothing() {
        let mut s = PingSuspector::new(SuspectorConfig::disabled());
        let actions = s.tick(SimTime::ZERO, &peers(3));
        assert!(actions.pings.is_empty());
        assert!(actions.suspicions.is_empty());
        assert!(!s.is_enabled());
    }

    #[test]
    fn first_tick_pings_everyone() {
        let mut s = PingSuspector::new(SuspectorConfig::large_timeouts());
        let actions = s.tick(SimTime::ZERO, &peers(3));
        assert_eq!(actions.pings.len(), 3);
        assert!(actions.suspicions.is_empty());
        // Nonces are distinct.
        let nonces: BTreeSet<u64> = actions.pings.iter().map(|(_, n)| *n).collect();
        assert_eq!(nonces.len(), 3);
    }

    #[test]
    fn pong_prevents_suspicion_and_allows_repinging() {
        let cfg = SuspectorConfig {
            enabled: true,
            interval: SimDuration::from_millis(100),
            timeout: SimDuration::from_millis(500),
        };
        let mut s = PingSuspector::new(cfg);
        let p = peers(1);
        let a0 = s.tick(SimTime::ZERO, &p);
        let (peer, nonce) = a0.pings[0];
        s.on_pong(peer, nonce);
        // Past the original deadline, but the pong already cleared it.
        let a1 = s.tick(SimTime::from_millis(600), &p);
        assert!(a1.suspicions.is_empty());
        assert_eq!(a1.pings.len(), 1);
    }

    #[test]
    fn missing_pong_leads_to_suspicion_once() {
        let cfg = SuspectorConfig::aggressive(SimDuration::from_millis(200));
        let mut s = PingSuspector::new(cfg);
        let p = peers(1);
        assert_eq!(s.tick(SimTime::ZERO, &p).pings.len(), 1);
        let a = s.tick(SimTime::from_millis(300), &p);
        assert_eq!(a.suspicions, vec![MemberId(1)]);
        assert!(s.suspected().contains(&MemberId(1)));
        // Suspected peers are not pinged or re-suspected.
        let a = s.tick(SimTime::from_millis(600), &p);
        assert!(a.pings.is_empty());
        assert!(a.suspicions.is_empty());
    }

    #[test]
    fn wrong_nonce_does_not_clear_outstanding_ping() {
        let cfg = SuspectorConfig::aggressive(SimDuration::from_millis(200));
        let mut s = PingSuspector::new(cfg);
        let p = peers(1);
        let a0 = s.tick(SimTime::ZERO, &p);
        let (peer, nonce) = a0.pings[0];
        s.on_pong(peer, nonce + 99);
        let a1 = s.tick(SimTime::from_millis(300), &p);
        assert_eq!(a1.suspicions, vec![peer]);
    }

    #[test]
    fn mark_suspected_is_idempotent() {
        let mut s = PingSuspector::new(SuspectorConfig::large_timeouts());
        s.mark_suspected(MemberId(2));
        s.mark_suspected(MemberId(2));
        assert_eq!(s.suspected().len(), 1);
        let a = s.tick(SimTime::ZERO, &[MemberId(2)]);
        assert!(a.pings.is_empty());
    }
}
