//! The asymmetric (sequencer-based) total-order protocol.
//!
//! One member of the current view — deterministically, the smallest member
//! identifier — acts as the *sequencer*.  Senders multicast their `Data`
//! message to the whole group; the sequencer assigns consecutive global
//! sequence numbers and multicasts `Order` decisions; every member delivers
//! messages in global-sequence order once it holds both the data and its
//! order.  Compared with the symmetric service this needs O(n) messages per
//! multicast instead of O(n²), at the price of a sequencing bottleneck.

use std::collections::BTreeMap;

use fs_common::id::MemberId;

use crate::message::{AppDeliver, GcMessage, ServiceKind};
use crate::view::View;

/// Per-member state of the sequencer-based total-order protocol.
#[derive(Debug, Clone)]
pub struct SequencerOrder {
    me: MemberId,
    next_seq: u64,
    /// Next global sequence number to assign (meaningful only at the sequencer).
    next_assign: u64,
    /// Next global sequence number to deliver locally.
    next_deliver: u64,
    /// Data messages waiting for their order, keyed by `(origin, seq)`.
    waiting_data: BTreeMap<(MemberId, u64), Vec<u8>>,
    /// Order decisions waiting for their data, keyed by the global sequence.
    orders: BTreeMap<u64, (MemberId, u64)>,
    /// Messages already sequenced by this node while acting as sequencer, to
    /// avoid double-assignment after retransmission.
    assigned: BTreeMap<(MemberId, u64), u64>,
}

impl SequencerOrder {
    /// Creates the protocol state for member `me`.
    pub fn new(me: MemberId) -> Self {
        Self {
            me,
            next_seq: 0,
            next_assign: 0,
            next_deliver: 0,
            waiting_data: BTreeMap::new(),
            orders: BTreeMap::new(),
            assigned: BTreeMap::new(),
        }
    }

    /// True when `me` is the sequencer of `view`.
    pub fn is_sequencer(&self, view: &View) -> bool {
        view.sequencer() == Some(self.me)
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.next_deliver
    }

    /// Multicasts `payload`.  Returns the messages to send to the other view
    /// members and any local deliveries that become possible.
    pub fn multicast(
        &mut self,
        payload: Vec<u8>,
        view: &View,
    ) -> (Vec<GcMessage>, Vec<AppDeliver>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let data = GcMessage::Data {
            origin: self.me,
            seq,
            ts: 0,
            vc: Vec::new(),
            service: ServiceKind::AsymmetricTotal,
            payload: payload.clone(),
        };
        self.waiting_data.insert((self.me, seq), payload);
        let mut to_send = vec![data];
        if self.is_sequencer(view) {
            to_send.extend(self.assign(self.me, seq));
        }
        (to_send, self.try_deliver())
    }

    /// Handles a `Data` message.  Returns order decisions to multicast (when
    /// acting as sequencer) and any local deliveries.
    pub fn on_data(
        &mut self,
        origin: MemberId,
        seq: u64,
        payload: Vec<u8>,
        view: &View,
    ) -> (Vec<GcMessage>, Vec<AppDeliver>) {
        self.waiting_data.entry((origin, seq)).or_insert(payload);
        let mut to_send = Vec::new();
        if self.is_sequencer(view) {
            to_send.extend(self.assign(origin, seq));
        }
        (to_send, self.try_deliver())
    }

    /// Handles an `Order` decision from the sequencer.
    pub fn on_order(&mut self, global_seq: u64, origin: MemberId, seq: u64) -> Vec<AppDeliver> {
        self.orders.insert(global_seq, (origin, seq));
        self.try_deliver()
    }

    /// Called after a view change.  If this member has just become the
    /// sequencer it assigns orders to every data message it holds that has
    /// not been sequenced yet (in deterministic `(origin, seq)` order).
    pub fn on_view_change(&mut self, view: &View) -> (Vec<GcMessage>, Vec<AppDeliver>) {
        let mut to_send = Vec::new();
        if self.is_sequencer(view) {
            // Continue the global sequence after the highest order we know of.
            let max_known = self.orders.keys().next_back().copied();
            if let Some(max) = max_known {
                self.next_assign = self.next_assign.max(max + 1);
            }
            self.next_assign = self.next_assign.max(self.next_deliver);
            let unsequenced: Vec<(MemberId, u64)> = self
                .waiting_data
                .keys()
                .filter(|k| {
                    !self.assigned.contains_key(k) && !self.orders.values().any(|v| v == *k)
                })
                .copied()
                .collect();
            for (origin, seq) in unsequenced {
                to_send.extend(self.assign(origin, seq));
            }
        }
        (to_send, self.try_deliver())
    }

    fn assign(&mut self, origin: MemberId, seq: u64) -> Vec<GcMessage> {
        if self.assigned.contains_key(&(origin, seq)) {
            return Vec::new();
        }
        let global_seq = self.next_assign;
        self.next_assign += 1;
        self.assigned.insert((origin, seq), global_seq);
        self.orders.insert(global_seq, (origin, seq));
        vec![GcMessage::Order {
            sequencer: self.me,
            global_seq,
            origin,
            seq,
        }]
    }

    fn try_deliver(&mut self) -> Vec<AppDeliver> {
        let mut out = Vec::new();
        while let Some(&(origin, seq)) = self.orders.get(&self.next_deliver) {
            let Some(payload) = self.waiting_data.get(&(origin, seq)) else {
                break;
            };
            out.push(AppDeliver {
                origin,
                seq,
                order: self.next_deliver,
                service: ServiceKind::AsymmetricTotal,
                payload: payload.clone(),
            });
            self.waiting_data.remove(&(origin, seq));
            self.orders.remove(&self.next_deliver);
            self.next_deliver += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: u32) -> View {
        View::initial((0..n).map(MemberId))
    }

    /// A hand-driven harness that relays all protocol messages immediately.
    struct Harness {
        view: View,
        members: Vec<SequencerOrder>,
        delivered: Vec<Vec<AppDeliver>>,
    }

    impl Harness {
        fn new(n: u32) -> Self {
            Self {
                view: view(n),
                members: (0..n).map(|i| SequencerOrder::new(MemberId(i))).collect(),
                delivered: (0..n).map(|_| Vec::new()).collect(),
            }
        }

        fn relay(&mut self, from: usize, msgs: Vec<GcMessage>) {
            for msg in msgs {
                for i in 0..self.members.len() {
                    if i == from {
                        continue;
                    }
                    match &msg {
                        GcMessage::Data {
                            origin,
                            seq,
                            payload,
                            ..
                        } => {
                            let view = self.view.clone();
                            let (more, dels) =
                                self.members[i].on_data(*origin, *seq, payload.clone(), &view);
                            self.delivered[i].extend(dels);
                            self.relay(i, more);
                        }
                        GcMessage::Order {
                            global_seq,
                            origin,
                            seq,
                            ..
                        } => {
                            let dels = self.members[i].on_order(*global_seq, *origin, *seq);
                            self.delivered[i].extend(dels);
                        }
                        _ => unreachable!("asymmetric protocol only sends data and order"),
                    }
                }
            }
        }

        fn multicast(&mut self, sender: usize, payload: &[u8]) {
            let view = self.view.clone();
            let (msgs, dels) = self.members[sender].multicast(payload.to_vec(), &view);
            self.delivered[sender].extend(dels);
            self.relay(sender, msgs);
        }

        fn orders(&self) -> Vec<Vec<(MemberId, u64)>> {
            self.delivered
                .iter()
                .map(|d| d.iter().map(|a| (a.origin, a.seq)).collect())
                .collect()
        }
    }

    #[test]
    fn sequencer_is_lowest_member() {
        let s = SequencerOrder::new(MemberId(0));
        assert!(s.is_sequencer(&view(3)));
        let s = SequencerOrder::new(MemberId(1));
        assert!(!s.is_sequencer(&view(3)));
    }

    #[test]
    fn members_agree_on_order() {
        let mut h = Harness::new(4);
        h.multicast(1, b"a");
        h.multicast(3, b"b");
        h.multicast(0, b"c");
        h.multicast(2, b"d");
        let orders = h.orders();
        assert_eq!(orders[0].len(), 4);
        for o in &orders[1..] {
            assert_eq!(o, &orders[0]);
        }
    }

    #[test]
    fn delivery_waits_for_order_and_data() {
        let v = view(3);
        let mut m = SequencerOrder::new(MemberId(2));
        // Order arrives before data.
        assert!(m.on_order(0, MemberId(1), 0).is_empty());
        let (_msgs, dels) = m.on_data(MemberId(1), 0, b"x".to_vec(), &v);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].order, 0);
    }

    #[test]
    fn deliveries_follow_global_sequence() {
        let mut m = SequencerOrder::new(MemberId(2));
        let v = view(3);
        // Data for both messages.
        m.on_data(MemberId(1), 0, b"first".to_vec(), &v);
        m.on_data(MemberId(0), 0, b"second".to_vec(), &v);
        // Order 1 arrives before order 0: nothing deliverable yet.
        assert!(m.on_order(1, MemberId(0), 0).is_empty());
        let dels = m.on_order(0, MemberId(1), 0);
        assert_eq!(dels.len(), 2);
        assert_eq!(dels[0].payload, b"first");
        assert_eq!(dels[1].payload, b"second");
        assert_eq!(m.delivered_count(), 2);
    }

    #[test]
    fn new_sequencer_takes_over_after_view_change() {
        let v0 = view(3);
        // Member 1 holds data that member 0 (the failed sequencer) never ordered.
        let mut m1 = SequencerOrder::new(MemberId(1));
        m1.on_data(MemberId(2), 0, b"orphan".to_vec(), &v0);
        assert_eq!(m1.delivered_count(), 0);
        let v1 = v0.without(MemberId(0)).unwrap();
        let (msgs, dels) = m1.on_view_change(&v1);
        // Member 1 is now the sequencer and orders the orphan message.
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            msgs[0],
            GcMessage::Order {
                sequencer: MemberId(1),
                ..
            }
        ));
        assert_eq!(dels.len(), 1);
    }

    #[test]
    fn sequencer_does_not_double_assign() {
        let v = view(2);
        let mut seq = SequencerOrder::new(MemberId(0));
        let (msgs1, _) = seq.on_data(MemberId(1), 0, b"x".to_vec(), &v);
        assert_eq!(msgs1.len(), 1);
        // Duplicate data (e.g. a retransmission) must not produce a second order.
        let (msgs2, _) = seq.on_data(MemberId(1), 0, b"x".to_vec(), &v);
        assert!(msgs2.is_empty());
    }
}
