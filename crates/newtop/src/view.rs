//! Group views (membership) for the partitionable membership service.
//!
//! NewTOP is a *partitionable* system: processes that suspect a member
//! install a new view excluding it, without any merge protocol (§3).  Views
//! shrink under suspicion, which is exactly the behaviour the paper relies
//! on when it warns that false suspicions "split groups" and reduce
//! fault-tolerance potential — the effect the fail-signal suspector
//! eliminates.  The one growth path is explicit readmission
//! ([`MembershipState::readmit`]): the recovery plane announces that a
//! previously excluded member came back up, and the view re-admits it under
//! a fresh view number (a deliberate reconfiguration, not a partition
//! merge).

use std::collections::BTreeSet;

use fs_common::id::MemberId;

use crate::message::ViewDeliver;

/// A membership view: a numbered snapshot of the live members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Monotonically increasing view number (0 is the initial view).
    pub id: u64,
    /// The members of the view.
    pub members: BTreeSet<MemberId>,
}

impl View {
    /// Creates the initial view (`id` 0) over `members`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn initial(members: impl IntoIterator<Item = MemberId>) -> Self {
        let members: BTreeSet<MemberId> = members.into_iter().collect();
        assert!(!members.is_empty(), "a view must have at least one member");
        Self { id: 0, members }
    }

    /// Returns true when `m` is a member of this view.
    pub fn contains(&self, m: MemberId) -> bool {
        self.members.contains(&m)
    }

    /// Number of members in the view.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns true when the view is empty (only possible transiently).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members in ascending order.
    pub fn members_sorted(&self) -> Vec<MemberId> {
        self.members.iter().copied().collect()
    }

    /// The sequencer for the asymmetric total-order service: the smallest
    /// member identifier in the view (deterministic across members).
    pub fn sequencer(&self) -> Option<MemberId> {
        self.members.iter().next().copied()
    }

    /// Installs a successor view that excludes `removed`.  Returns `None`
    /// when `removed` is not a member (no change).
    pub fn without(&self, removed: MemberId) -> Option<View> {
        if !self.members.contains(&removed) {
            return None;
        }
        let mut members = self.members.clone();
        members.remove(&removed);
        Some(View {
            id: self.id + 1,
            members,
        })
    }

    /// Installs a successor view that re-admits `added`.  Returns `None`
    /// when `added` is already a member (no change).
    pub fn with(&self, added: MemberId) -> Option<View> {
        if self.members.contains(&added) {
            return None;
        }
        let mut members = self.members.clone();
        members.insert(added);
        Some(View {
            id: self.id + 1,
            members,
        })
    }

    /// The deliverable form of this view.
    pub fn to_deliver(&self) -> ViewDeliver {
        ViewDeliver {
            view_id: self.id,
            members: self.members_sorted(),
        }
    }
}

/// Tracks the current view and the set of members ever suspected, applying
/// suspicion-driven view changes deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipState {
    me: MemberId,
    view: View,
    suspected: BTreeSet<MemberId>,
}

impl MembershipState {
    /// Creates the membership state for `me` with the given initial group.
    pub fn new(me: MemberId, group: impl IntoIterator<Item = MemberId>) -> Self {
        Self {
            me,
            view: View::initial(group),
            suspected: BTreeSet::new(),
        }
    }

    /// The local member identity.
    pub fn me(&self) -> MemberId {
        self.me
    }

    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The members suspected so far (whether or not still in the view).
    pub fn suspected(&self) -> &BTreeSet<MemberId> {
        &self.suspected
    }

    /// Records a suspicion of `member`.  If the member is still in the view
    /// a new view excluding it is installed and returned for delivery to the
    /// application.
    pub fn suspect(&mut self, member: MemberId) -> Option<View> {
        self.suspected.insert(member);
        if member == self.me {
            // A process never excludes itself; in NewTOP self-suspicion is
            // meaningless and in FS-NewTOP it cannot arise (a process does
            // not receive its own fail-signal as a suspicion).
            return None;
        }
        match self.view.without(member) {
            Some(next) => {
                self.view = next.clone();
                Some(next)
            }
            None => None,
        }
    }

    /// Clears a suspicion and re-admits `member` to the view — the recovery
    /// plane's rejoin path.  If the member had been excluded, the successor
    /// view including it again is installed and returned for delivery.
    /// Unlike suspicion-driven shrinking this is an explicit, scheduled
    /// reconfiguration, so it may grow the view.
    pub fn readmit(&mut self, member: MemberId) -> Option<View> {
        self.suspected.remove(&member);
        match self.view.with(member) {
            Some(next) => {
                self.view = next.clone();
                Some(next)
            }
            None => None,
        }
    }

    /// True when every member of the current view (other than `me`) has been
    /// suspected — the group has collapsed to a singleton.
    pub fn is_singleton(&self) -> bool {
        self.view.len() == 1 && self.view.contains(self.me)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u32) -> Vec<MemberId> {
        (0..n).map(MemberId).collect()
    }

    #[test]
    fn initial_view_contains_all_members() {
        let v = View::initial(group(3));
        assert_eq!(v.id, 0);
        assert_eq!(v.len(), 3);
        assert!(v.contains(MemberId(0)));
        assert!(!v.contains(MemberId(3)));
        assert_eq!(v.members_sorted(), group(3));
        assert!(!v.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_initial_view_panics() {
        View::initial(Vec::new());
    }

    #[test]
    fn sequencer_is_smallest_member() {
        let v = View::initial(vec![MemberId(5), MemberId(2), MemberId(9)]);
        assert_eq!(v.sequencer(), Some(MemberId(2)));
        let v2 = v.without(MemberId(2)).unwrap();
        assert_eq!(v2.sequencer(), Some(MemberId(5)));
    }

    #[test]
    fn without_increments_view_id() {
        let v = View::initial(group(3));
        let v1 = v.without(MemberId(1)).unwrap();
        assert_eq!(v1.id, 1);
        assert_eq!(v1.len(), 2);
        assert!(!v1.contains(MemberId(1)));
        // Removing a non-member is a no-op.
        assert!(v1.without(MemberId(1)).is_none());
    }

    #[test]
    fn to_deliver_matches_view() {
        let v = View::initial(group(2));
        let d = v.to_deliver();
        assert_eq!(d.view_id, 0);
        assert_eq!(d.members, group(2));
    }

    #[test]
    fn membership_suspicion_installs_new_view() {
        let mut m = MembershipState::new(MemberId(0), group(3));
        assert_eq!(m.view().id, 0);
        let v1 = m.suspect(MemberId(2)).unwrap();
        assert_eq!(v1.id, 1);
        assert!(!m.view().contains(MemberId(2)));
        // Suspecting the same member again changes nothing.
        assert!(m.suspect(MemberId(2)).is_none());
        assert_eq!(m.view().id, 1);
        assert_eq!(m.suspected().len(), 1);
    }

    #[test]
    fn self_suspicion_is_ignored() {
        let mut m = MembershipState::new(MemberId(0), group(3));
        assert!(m.suspect(MemberId(0)).is_none());
        assert!(m.view().contains(MemberId(0)));
    }

    #[test]
    fn group_can_collapse_to_singleton() {
        let mut m = MembershipState::new(MemberId(0), group(3));
        m.suspect(MemberId(1));
        m.suspect(MemberId(2));
        assert!(m.is_singleton());
        assert_eq!(m.view().len(), 1);
    }

    #[test]
    fn readmit_reverses_a_suspicion_exclusion() {
        let mut m = MembershipState::new(MemberId(0), group(3));
        m.suspect(MemberId(2));
        assert!(!m.view().contains(MemberId(2)));
        assert_eq!(m.view().id, 1);
        let v2 = m.readmit(MemberId(2)).unwrap();
        assert_eq!(v2.id, 2);
        assert!(m.view().contains(MemberId(2)));
        assert!(!m.suspected().contains(&MemberId(2)));
        // Re-suspecting after readmission excludes it again (fresh view).
        let v3 = m.suspect(MemberId(2)).unwrap();
        assert_eq!(v3.id, 3);
        // Readmitting a current member changes nothing.
        let mut fresh = MembershipState::new(MemberId(0), group(3));
        assert!(fresh.readmit(MemberId(1)).is_none());
        assert_eq!(fresh.view().id, 0);
    }

    #[test]
    fn identical_suspicion_sequences_give_identical_views() {
        let mut a = MembershipState::new(MemberId(0), group(5));
        let mut b = MembershipState::new(MemberId(1), group(5));
        for s in [MemberId(3), MemberId(2), MemberId(3)] {
            a.suspect(s);
            b.suspect(s);
        }
        assert_eq!(a.view().id, b.view().id);
        assert_eq!(a.view().members, b.view().members);
    }
}
