//! The NewTOP Service Object (NSO) adapter for crash-tolerant deployments.
//!
//! [`NsoActor`] hosts a [`GcMachine`] directly on a simulated (or threaded)
//! node: application requests arriving from the local application process are
//! fed to the machine as `LocalApp` inputs, peer messages as `Peer` inputs,
//! and the ping-based [`PingSuspector`] converts missing pongs into `Suspect`
//! control inputs.  This is the *original*, crash-tolerant NewTOP deployment
//! that the paper's measurements use as the baseline.

use std::collections::BTreeMap;

use fs_common::codec::Wire;
use fs_common::id::{MemberId, ProcessId};
use fs_common::Bytes;
use fs_simnet::actor::{Actor, Context, TimerId};
use fs_smr::machine::{DeterministicMachine, Endpoint, MachineInput, MachineOutput};

use crate::gc::{GcConfig, GcMachine};
use crate::message::{ControlInput, GcMessage};
use crate::suspector::{PingSuspector, SuspectorConfig};

/// Timer used by the suspector's periodic ping round.
pub const TIMER_SUSPECTOR: TimerId = TimerId(1);

/// Who this NSO talks to: the local application process and the peer NSO
/// process of every other group member.
#[derive(Debug, Clone, Default)]
pub struct AddressBook {
    /// The local application process (the NSO's client).
    pub app: ProcessId,
    /// The NSO process serving each other member.
    pub peers: BTreeMap<MemberId, ProcessId>,
}

impl AddressBook {
    /// Creates an address book for a local application and a set of peers.
    pub fn new(app: ProcessId, peers: BTreeMap<MemberId, ProcessId>) -> Self {
        Self { app, peers }
    }

    /// Looks up the member served by a given peer process.
    pub fn member_of(&self, process: ProcessId) -> Option<MemberId> {
        self.peers
            .iter()
            .find(|(_, p)| **p == process)
            .map(|(m, _)| *m)
    }

    /// Looks up the process serving a given member.
    pub fn process_of(&self, member: MemberId) -> Option<ProcessId> {
        self.peers.get(&member).copied()
    }
}

/// The crash-tolerant NewTOP service object: GC machine + suspector +
/// address book, exposed as a simulation/threaded-runtime actor.
pub struct NsoActor {
    machine: GcMachine,
    addresses: AddressBook,
    suspector: PingSuspector,
}

impl std::fmt::Debug for NsoActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NsoActor")
            .field("member", &self.machine.member())
            .field("view", &self.machine.view().id)
            .finish()
    }
}

impl NsoActor {
    /// Creates an NSO for the given GC configuration, addresses and
    /// suspector settings.
    pub fn new(gc: GcConfig, addresses: AddressBook, suspector: SuspectorConfig) -> Self {
        Self {
            machine: GcMachine::new(gc),
            addresses,
            suspector: PingSuspector::new(suspector),
        }
    }

    /// Read access to the wrapped GC machine (for tests and experiments).
    pub fn machine(&self) -> &GcMachine {
        &self.machine
    }

    /// Read access to the suspector.
    pub fn suspector(&self) -> &PingSuspector {
        &self.suspector
    }

    fn route_outputs(&mut self, ctx: &mut dyn Context, outputs: Vec<MachineOutput>) {
        for output in outputs {
            match output.dest {
                Endpoint::LocalApp => ctx.send(self.addresses.app, output.bytes),
                Endpoint::Peer(member) => {
                    if let Some(process) = self.addresses.process_of(member) {
                        ctx.send(process, output.bytes);
                    }
                }
                Endpoint::Broadcast => {
                    for (_, process) in self.addresses.peers.iter() {
                        ctx.send(*process, output.bytes.clone());
                    }
                }
                Endpoint::Environment => {
                    // Control outputs are not produced by the GC machine.
                }
            }
        }
    }

    fn feed_machine(&mut self, ctx: &mut dyn Context, input: MachineInput) {
        ctx.charge_cpu(self.machine.processing_cost(&input));
        let outputs = self.machine.handle(&input);
        self.route_outputs(ctx, outputs);
    }
}

impl Actor for NsoActor {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if self.suspector.is_enabled() {
            ctx.set_timer(self.suspector.interval(), TIMER_SUSPECTOR);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Context, from: ProcessId, payload: Bytes) {
        if from == self.addresses.app {
            self.feed_machine(ctx, MachineInput::from_app(payload));
            return;
        }
        let Some(member) = self.addresses.member_of(from) else {
            // Unknown senders are ignored: NewTOP only serves its group.
            return;
        };
        // The suspector watches pongs at the adapter level; everything is
        // still forwarded to the deterministic machine.
        if let Ok(GcMessage::Pong {
            from: ponger,
            nonce,
        }) = GcMessage::from_wire(&payload)
        {
            self.suspector.on_pong(ponger, nonce);
        }
        self.feed_machine(ctx, MachineInput::from_peer(member, payload));
    }

    fn on_timer(&mut self, ctx: &mut dyn Context, timer: TimerId) {
        if timer != TIMER_SUSPECTOR {
            return;
        }
        let peers: Vec<MemberId> = self
            .machine
            .view()
            .members_sorted()
            .into_iter()
            .filter(|m| *m != self.machine.member())
            .collect();
        let actions = self.suspector.tick(ctx.now(), &peers);
        for (peer, nonce) in actions.pings {
            if let Some(process) = self.addresses.process_of(peer) {
                let ping = GcMessage::Ping {
                    from: self.machine.member(),
                    nonce,
                };
                ctx.send(process, ping.to_wire());
            }
        }
        for suspect in actions.suspicions {
            ctx.trace(&format!("suspect {suspect}"));
            let control = ControlInput::Suspect(suspect).to_wire();
            self.feed_machine(ctx, MachineInput::from_env(control));
        }
        if self.suspector.is_enabled() {
            ctx.set_timer(self.suspector.interval(), TIMER_SUSPECTOR);
        }
    }

    fn name(&self) -> String {
        format!("nso-{}", self.machine.member().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{AppRequest, ServiceKind, Upcall};
    use fs_common::time::SimDuration;
    use fs_simnet::actor::TestContext;

    fn addresses(app: u32, peers: &[(u32, u32)]) -> AddressBook {
        AddressBook::new(
            ProcessId(app),
            peers
                .iter()
                .map(|(m, p)| (MemberId(*m), ProcessId(*p)))
                .collect(),
        )
    }

    fn gc_config(member: u32, group: &[u32]) -> GcConfig {
        GcConfig::new(
            MemberId(member),
            group.iter().copied().map(MemberId).collect(),
        )
    }

    #[test]
    fn address_book_lookups() {
        let book = addresses(10, &[(1, 11), (2, 12)]);
        assert_eq!(book.member_of(ProcessId(11)), Some(MemberId(1)));
        assert_eq!(book.member_of(ProcessId(99)), None);
        assert_eq!(book.process_of(MemberId(2)), Some(ProcessId(12)));
        assert_eq!(book.process_of(MemberId(9)), None);
    }

    #[test]
    fn app_request_is_multicast_to_peers() {
        let mut nso = NsoActor::new(
            gc_config(0, &[0, 1, 2]),
            addresses(10, &[(1, 11), (2, 12)]),
            SuspectorConfig::disabled(),
        );
        let mut ctx = TestContext::new(ProcessId(20));
        let request = AppRequest {
            service: ServiceKind::SymmetricTotal,
            payload: b"hi".to_vec(),
        };
        nso.on_message(&mut ctx, ProcessId(10), request.to_wire());
        // One data message to each of the two peers.
        assert_eq!(ctx.sent_to(ProcessId(11)).len(), 1);
        assert_eq!(ctx.sent_to(ProcessId(12)).len(), 1);
        // CPU was charged for the protocol processing.
        assert!(ctx.cpu > SimDuration::ZERO);
    }

    #[test]
    fn peer_data_produces_acks_and_unknown_senders_are_ignored() {
        let mut nso = NsoActor::new(
            gc_config(0, &[0, 1]),
            addresses(10, &[(1, 11)]),
            SuspectorConfig::disabled(),
        );
        let mut ctx = TestContext::new(ProcessId(20));
        let data = GcMessage::Data {
            origin: MemberId(1),
            seq: 0,
            ts: 1,
            vc: vec![],
            service: ServiceKind::SymmetricTotal,
            payload: b"x".to_vec(),
        };
        nso.on_message(&mut ctx, ProcessId(11), data.to_wire());
        // The ack goes back to the peer; with both acks in hand the delivery
        // goes up to the app.
        assert_eq!(ctx.sent_to(ProcessId(11)).len(), 1);
        let to_app = ctx.sent_to(ProcessId(10));
        assert_eq!(to_app.len(), 1);
        assert!(matches!(
            Upcall::from_wire(&to_app[0].payload).unwrap(),
            Upcall::Deliver(_)
        ));

        // A message from an unknown process does nothing.
        let before = ctx.sent.len();
        nso.on_message(&mut ctx, ProcessId(99), b"junk"[..].into());
        assert_eq!(ctx.sent.len(), before);
    }

    #[test]
    fn suspector_timer_sends_pings_then_suspicions() {
        let mut nso = NsoActor::new(
            gc_config(0, &[0, 1]),
            addresses(10, &[(1, 11)]),
            SuspectorConfig::aggressive(SimDuration::from_millis(100)),
        );
        let mut ctx = TestContext::new(ProcessId(20));
        nso.on_start(&mut ctx);
        assert_eq!(ctx.timers_set.len(), 1);

        // First round: a ping to the peer.
        nso.on_timer(&mut ctx, TIMER_SUSPECTOR);
        assert_eq!(ctx.sent_to(ProcessId(11)).len(), 1);

        // No pong arrives; past the timeout the peer is suspected and a view
        // change (plus gossip) is produced.
        ctx.advance(SimDuration::from_millis(500));
        nso.on_timer(&mut ctx, TIMER_SUSPECTOR);
        assert!(nso.suspector().suspected().contains(&MemberId(1)));
        assert_eq!(nso.machine().view().id, 1);
        // The view change is delivered to the application.
        let view_upcalls = ctx
            .sent_to(ProcessId(10))
            .iter()
            .filter(|o| matches!(Upcall::from_wire(&o.payload), Ok(Upcall::View(_))))
            .count();
        assert_eq!(view_upcalls, 1);
    }

    #[test]
    fn pong_clears_outstanding_ping() {
        let mut nso = NsoActor::new(
            gc_config(0, &[0, 1]),
            addresses(10, &[(1, 11)]),
            SuspectorConfig::aggressive(SimDuration::from_millis(100)),
        );
        let mut ctx = TestContext::new(ProcessId(20));
        nso.on_start(&mut ctx);
        nso.on_timer(&mut ctx, TIMER_SUSPECTOR);
        // The peer answers with the right nonce (nonce 0 is the first one).
        let pong = GcMessage::Pong {
            from: MemberId(1),
            nonce: 0,
        };
        nso.on_message(&mut ctx, ProcessId(11), pong.to_wire());
        ctx.advance(SimDuration::from_millis(500));
        nso.on_timer(&mut ctx, TIMER_SUSPECTOR);
        assert!(nso.suspector().suspected().is_empty());
        assert_eq!(nso.machine().view().id, 0);
    }

    #[test]
    fn disabled_suspector_sets_no_timer() {
        let mut nso = NsoActor::new(
            gc_config(0, &[0, 1]),
            addresses(10, &[(1, 11)]),
            SuspectorConfig::disabled(),
        );
        let mut ctx = TestContext::new(ProcessId(20));
        nso.on_start(&mut ctx);
        assert!(ctx.timers_set.is_empty());
        assert_eq!(nso.name(), "nso-0");
    }
}
