//! The NewTOP group-communication (GC) object as a deterministic machine.
//!
//! [`GcMachine`] composes the sub-protocols — symmetric and asymmetric total
//! order, causal order, reliable and simple multicast, and partitionable
//! membership — behind the [`DeterministicMachine`] interface.  Because it is
//! a deterministic, single-threaded state machine (§3.1: "the GC service is
//! implemented as a single-threaded, deterministic application"), the very
//! same object can be:
//!
//! * hosted directly by an [`crate::nso::NsoActor`] to form crash-tolerant
//!   NewTOP, or
//! * wrapped by the fail-signal pair of the `failsignal` crate to form
//!   FS-NewTOP, with no change to this code.

use std::collections::BTreeMap;

use fs_common::codec::Wire;
use fs_common::id::MemberId;
use fs_common::time::SimDuration;
use fs_smr::machine::{DeterministicMachine, Endpoint, MachineInput, MachineOutput};

use crate::causal::CausalOrder;
use crate::message::{AppDeliver, AppRequest, ControlInput, GcMessage, ServiceKind, Upcall};
use crate::reliable::{ReliableMulticast, SimpleMulticast};
use crate::total_asym::SequencerOrder;
use crate::total_sym::SymmetricOrder;
use crate::view::{MembershipState, View};

/// CPU-cost model of the GC protocol processing (charged to the simulated
/// clock by the hosting adapter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcCosts {
    /// Fixed protocol-processing cost per handled input.
    pub base: SimDuration,
    /// Additional cost per payload byte (header parsing, copying, queue
    /// management in the original Java implementation).
    pub per_byte: SimDuration,
}

impl GcCosts {
    /// Costs calibrated to the paper's Java 1.4 / Pentium III testbed: a few
    /// milliseconds of protocol processing per handled message (header
    /// parsing, queue management, ordering bookkeeping in the original Java
    /// implementation), plus a per-byte term.
    pub fn era_2003() -> Self {
        Self {
            base: SimDuration::from_micros(3_200),
            per_byte: SimDuration::from_nanos(60),
        }
    }

    /// Zero-cost model for protocol unit tests.
    pub fn free() -> Self {
        Self {
            base: SimDuration::ZERO,
            per_byte: SimDuration::ZERO,
        }
    }

    /// The cost of handling an input of `len` bytes.
    pub fn cost(&self, len: usize) -> SimDuration {
        self.base + self.per_byte * len as u64
    }
}

impl Default for GcCosts {
    fn default() -> Self {
        Self::era_2003()
    }
}

/// Static configuration of one GC object.
#[derive(Debug, Clone)]
pub struct GcConfig {
    /// The member this GC object serves.
    pub member: MemberId,
    /// The initial group membership.
    pub group: Vec<MemberId>,
    /// CPU-cost model.
    pub costs: GcCosts,
}

impl GcConfig {
    /// Creates a configuration for `member` of `group` with era-2003 costs.
    pub fn new(member: MemberId, group: Vec<MemberId>) -> Self {
        Self {
            member,
            group,
            costs: GcCosts::era_2003(),
        }
    }

    /// Replaces the cost model.
    pub fn with_costs(mut self, costs: GcCosts) -> Self {
        self.costs = costs;
        self
    }
}

/// The NewTOP group-communication object.
pub struct GcMachine {
    member: MemberId,
    costs: GcCosts,
    membership: MembershipState,
    sym: SymmetricOrder,
    asym: SequencerOrder,
    causal: CausalOrder,
    reliable: ReliableMulticast,
    simple: SimpleMulticast,
    delivered: Vec<AppDeliver>,
    views_delivered: Vec<u64>,
    message_counts: BTreeMap<&'static str, u64>,
}

impl std::fmt::Debug for GcMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcMachine")
            .field("member", &self.member)
            .field("view", &self.membership.view().id)
            .field("delivered", &self.delivered.len())
            .finish()
    }
}

impl GcMachine {
    /// Creates a GC object from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the member is not part of its own group.
    pub fn new(config: GcConfig) -> Self {
        assert!(
            config.group.contains(&config.member),
            "member {} must belong to its group",
            config.member
        );
        Self {
            member: config.member,
            costs: config.costs,
            membership: MembershipState::new(config.member, config.group.clone()),
            sym: SymmetricOrder::new(config.member),
            asym: SequencerOrder::new(config.member),
            causal: CausalOrder::new(config.member, config.group),
            reliable: ReliableMulticast::new(),
            simple: SimpleMulticast::new(),
            delivered: Vec::new(),
            views_delivered: Vec::new(),
            message_counts: BTreeMap::new(),
        }
    }

    /// The member this GC object serves.
    pub fn member(&self) -> MemberId {
        self.member
    }

    /// The currently installed view.
    pub fn view(&self) -> &View {
        self.membership.view()
    }

    /// The messages delivered to the local application so far, in order.
    pub fn delivered(&self) -> &[AppDeliver] {
        &self.delivered
    }

    /// The view numbers delivered so far.
    pub fn views_delivered(&self) -> &[u64] {
        &self.views_delivered
    }

    /// How many protocol messages of each kind this object has received.
    pub fn message_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.message_counts
    }

    fn multicast_to_view(&self, msg: &GcMessage, outputs: &mut Vec<MachineOutput>) {
        // One logical multicast is one machine output (and therefore one
        // signature in the fail-signal wrapper); the hosting adapter fans it
        // out to the physical peers.
        outputs.push(MachineOutput::broadcast(msg.to_wire()));
    }

    fn deliver_up(&mut self, deliveries: Vec<AppDeliver>, outputs: &mut Vec<MachineOutput>) {
        for d in deliveries {
            outputs.push(MachineOutput::to_app(Upcall::Deliver(d.clone()).to_wire()));
            self.delivered.push(d);
        }
    }

    fn handle_app_request(&mut self, bytes: &[u8]) -> Vec<MachineOutput> {
        let mut outputs = Vec::new();
        let Ok(request) = AppRequest::from_wire(bytes) else {
            return outputs; // a malformed local request is dropped
        };
        let AppRequest { service, payload } = request;
        match service {
            ServiceKind::SymmetricTotal => {
                let view = self.membership.view().clone();
                let (data, dels) = self.sym.multicast(payload, &view);
                self.multicast_to_view(&data, &mut outputs);
                self.deliver_up(dels, &mut outputs);
            }
            ServiceKind::AsymmetricTotal => {
                let view = self.membership.view().clone();
                let (msgs, dels) = self.asym.multicast(payload, &view);
                for m in &msgs {
                    self.multicast_to_view(m, &mut outputs);
                }
                self.deliver_up(dels, &mut outputs);
            }
            ServiceKind::Reliable => {
                let (data, del) = self.reliable.multicast(self.member, payload);
                self.multicast_to_view(&data, &mut outputs);
                self.deliver_up(vec![del], &mut outputs);
            }
            ServiceKind::Unreliable => {
                let (data, del) = self.simple.multicast(self.member, payload);
                self.multicast_to_view(&data, &mut outputs);
                self.deliver_up(vec![del], &mut outputs);
            }
            ServiceKind::Causal => {
                let (data, del) = self.causal.multicast(payload);
                self.multicast_to_view(&data, &mut outputs);
                self.deliver_up(vec![del], &mut outputs);
            }
        }
        outputs
    }

    fn handle_peer_message(&mut self, from: MemberId, bytes: &[u8]) -> Vec<MachineOutput> {
        let mut outputs = Vec::new();
        let Ok(message) = GcMessage::from_wire(bytes) else {
            return outputs; // a malformed peer message cannot be processed
        };
        *self.message_counts.entry(message.kind()).or_insert(0) += 1;
        match message {
            GcMessage::Data {
                origin,
                seq,
                ts,
                vc,
                service,
                payload,
            } => match service {
                ServiceKind::SymmetricTotal => {
                    let view = self.membership.view().clone();
                    let (ack, dels) = self.sym.on_data(origin, seq, ts, payload, &view);
                    self.multicast_to_view(&ack, &mut outputs);
                    self.deliver_up(dels, &mut outputs);
                }
                ServiceKind::AsymmetricTotal => {
                    let view = self.membership.view().clone();
                    let (msgs, dels) = self.asym.on_data(origin, seq, payload, &view);
                    for m in &msgs {
                        self.multicast_to_view(m, &mut outputs);
                    }
                    self.deliver_up(dels, &mut outputs);
                }
                ServiceKind::Reliable => {
                    let receipt = self.reliable.on_data(origin, seq, payload);
                    // Any gap this receipt revealed is NACKed back to the
                    // peer whose message exposed it — that peer provably
                    // processed a later message from the same origin, so it
                    // either retains the missing ones or has NACKed them
                    // itself.
                    for missing in receipt.missing {
                        let nack = GcMessage::Nack {
                            origin,
                            seq: missing,
                            from: self.member,
                        };
                        outputs.push(MachineOutput::to_peer(from, nack.to_wire()));
                    }
                    if let Some(relay) = receipt.relay {
                        self.multicast_to_view(&relay, &mut outputs);
                    }
                    if let Some(del) = receipt.deliver {
                        self.deliver_up(vec![del], &mut outputs);
                    }
                }
                ServiceKind::Unreliable => {
                    let del = self.simple.on_data(origin, seq, payload);
                    self.deliver_up(vec![del], &mut outputs);
                }
                ServiceKind::Causal => {
                    let dels = self.causal.on_data(origin, seq, vc, payload);
                    self.deliver_up(dels, &mut outputs);
                }
            },
            GcMessage::Ack {
                origin,
                seq,
                from: acker,
                clock,
            } => {
                let view = self.membership.view().clone();
                let dels = self.sym.on_ack(origin, seq, acker, clock, &view);
                self.deliver_up(dels, &mut outputs);
            }
            GcMessage::Order {
                global_seq,
                origin,
                seq,
                ..
            } => {
                let dels = self.asym.on_order(global_seq, origin, seq);
                self.deliver_up(dels, &mut outputs);
            }
            GcMessage::Ping {
                from: pinger,
                nonce,
            } => {
                let pong = GcMessage::Pong {
                    from: self.member,
                    nonce,
                };
                outputs.push(MachineOutput::to_peer(pinger, pong.to_wire()));
            }
            GcMessage::Pong { .. } => {
                // Liveness bookkeeping happens in the hosting adapter (the
                // ping-based suspector); the machine itself has nothing to do.
            }
            GcMessage::Suspect { suspect, .. } => {
                let _ = from;
                self.apply_suspicion(suspect, false, &mut outputs);
            }
            GcMessage::Nack {
                origin,
                seq,
                from: requester,
            } => {
                if let Some(data) = self.reliable.on_nack(origin, seq) {
                    outputs.push(MachineOutput::to_peer(requester, data.to_wire()));
                }
            }
        }
        outputs
    }

    fn handle_control(&mut self, bytes: &[u8]) -> Vec<MachineOutput> {
        let mut outputs = Vec::new();
        let Ok(control) = ControlInput::from_wire(bytes) else {
            return outputs;
        };
        match control {
            ControlInput::Suspect(member) => {
                self.apply_suspicion(member, true, &mut outputs);
            }
        }
        outputs
    }

    fn apply_suspicion(
        &mut self,
        suspect: MemberId,
        gossip: bool,
        outputs: &mut Vec<MachineOutput>,
    ) {
        let Some(new_view) = self.membership.suspect(suspect) else {
            return;
        };
        if gossip {
            // Tell the rest of the group so every member installs the view.
            let notice = GcMessage::Suspect {
                suspect,
                from: self.member,
            };
            self.multicast_to_view(&notice, outputs);
        }
        // Deliver the view change to the application.
        outputs.push(MachineOutput::to_app(
            Upcall::View(new_view.to_deliver()).to_wire(),
        ));
        self.views_delivered.push(new_view.id);
        // Let the ordering protocols react (release messages waiting on the
        // removed member; take over sequencing if needed).
        let dels = self.sym.on_view_change(&new_view);
        self.deliver_up(dels, outputs);
        let (msgs, dels) = self.asym.on_view_change(&new_view);
        for m in &msgs {
            self.multicast_to_view(m, outputs);
        }
        self.deliver_up(dels, outputs);
    }
}

impl DeterministicMachine for GcMachine {
    fn handle(&mut self, input: &MachineInput) -> Vec<MachineOutput> {
        match input.source {
            Endpoint::LocalApp => self.handle_app_request(&input.bytes),
            Endpoint::Peer(from) => self.handle_peer_message(from, &input.bytes),
            Endpoint::Environment => self.handle_control(&input.bytes),
            // A broadcast is a destination, never a source; such an input
            // cannot come from a correct adapter and is ignored.
            Endpoint::Broadcast => Vec::new(),
        }
    }

    fn processing_cost(&self, input: &MachineInput) -> SimDuration {
        self.costs.cost(input.bytes.len())
    }

    fn name(&self) -> String {
        format!("newtop-gc-{}", self.member.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs a full group of GC machines with immediate, in-order message
    /// delivery between them (an idealised network).  Members listed in
    /// `drop_to` silently lose every message addressed to them — a stand-in
    /// for a one-way-severed network during the faulted window.
    pub(crate) struct GcHarness {
        pub machines: Vec<GcMachine>,
        pub drop_to: Vec<MemberId>,
    }

    impl GcHarness {
        pub fn new(n: u32) -> Self {
            let group: Vec<MemberId> = (0..n).map(MemberId).collect();
            let machines = group
                .iter()
                .map(|m| {
                    GcMachine::new(GcConfig::new(*m, group.clone()).with_costs(GcCosts::free()))
                })
                .collect();
            Self {
                machines,
                drop_to: Vec::new(),
            }
        }

        fn index_of(&self, m: MemberId) -> usize {
            self.machines
                .iter()
                .position(|g| g.member() == m)
                .expect("member exists")
        }

        /// Routes machine outputs until quiescence.
        fn route(&mut self, from: MemberId, outputs: Vec<MachineOutput>) {
            let mut queue: Vec<(MemberId, MachineOutput)> =
                outputs.into_iter().map(|o| (from, o)).collect();
            while let Some((src, output)) = queue.pop() {
                match output.dest {
                    Endpoint::Peer(dest) => {
                        if self.drop_to.contains(&dest) {
                            continue; // lost in flight
                        }
                        let idx = self.index_of(dest);
                        let input = MachineInput::from_peer(src, output.bytes);
                        let more = self.machines[idx].handle(&input);
                        queue.extend(more.into_iter().map(|o| (dest, o)));
                    }
                    Endpoint::Broadcast => {
                        let members: Vec<MemberId> =
                            self.machines.iter().map(|m| m.member()).collect();
                        for dest in members {
                            if dest == src || self.drop_to.contains(&dest) {
                                continue;
                            }
                            let idx = self.index_of(dest);
                            let input = MachineInput::from_peer(src, output.bytes.clone());
                            let more = self.machines[idx].handle(&input);
                            queue.extend(more.into_iter().map(|o| (dest, o)));
                        }
                    }
                    Endpoint::LocalApp | Endpoint::Environment => {
                        // Deliveries are recorded inside the machine; nothing to route.
                    }
                }
            }
        }

        pub fn app_multicast(&mut self, sender: u32, service: ServiceKind, payload: &[u8]) {
            let request = AppRequest {
                service,
                payload: payload.to_vec(),
            }
            .to_wire();
            let sender_id = MemberId(sender);
            let idx = self.index_of(sender_id);
            let outputs = self.machines[idx].handle(&MachineInput::from_app(request));
            self.route(sender_id, outputs);
        }

        pub fn suspect(&mut self, at: u32, suspect: u32) {
            let at_id = MemberId(at);
            let idx = self.index_of(at_id);
            let control = ControlInput::Suspect(MemberId(suspect)).to_wire();
            let outputs = self.machines[idx].handle(&MachineInput::from_env(control));
            self.route(at_id, outputs);
        }

        pub fn delivered_orders(&self, member: u32) -> Vec<(MemberId, u64)> {
            let idx = self.index_of(MemberId(member));
            self.machines[idx]
                .delivered()
                .iter()
                .filter(|d| {
                    matches!(
                        d.service,
                        ServiceKind::SymmetricTotal | ServiceKind::AsymmetricTotal
                    )
                })
                .map(|d| (d.origin, d.seq))
                .collect()
        }
    }

    #[test]
    fn symmetric_total_order_agrees_across_members() {
        let mut h = GcHarness::new(4);
        for round in 0..3 {
            for sender in 0..4 {
                h.app_multicast(
                    sender,
                    ServiceKind::SymmetricTotal,
                    format!("r{round}s{sender}").as_bytes(),
                );
            }
        }
        let reference = h.delivered_orders(0);
        assert_eq!(reference.len(), 12);
        for member in 1..4 {
            assert_eq!(
                h.delivered_orders(member),
                reference,
                "member {member} order differs"
            );
        }
    }

    #[test]
    fn asymmetric_total_order_agrees_across_members() {
        let mut h = GcHarness::new(3);
        for sender in [2u32, 0, 1, 2, 1] {
            h.app_multicast(sender, ServiceKind::AsymmetricTotal, b"payload");
        }
        let reference = h.delivered_orders(0);
        assert_eq!(reference.len(), 5);
        for member in 1..3 {
            assert_eq!(h.delivered_orders(member), reference);
        }
    }

    #[test]
    fn reliable_multicast_reaches_everyone_once() {
        let mut h = GcHarness::new(3);
        h.app_multicast(1, ServiceKind::Reliable, b"news");
        for m in 0..3 {
            let idx = h.index_of(MemberId(m));
            let reliable: Vec<&AppDeliver> = h.machines[idx]
                .delivered()
                .iter()
                .filter(|d| d.service == ServiceKind::Reliable)
                .collect();
            assert_eq!(reliable.len(), 1, "member {m}");
            assert_eq!(reliable[0].payload, b"news");
        }
    }

    /// The NACK/retransmit regression: member 1 loses *every* copy of a
    /// reliable multicast — the direct copy and all flood relays — so
    /// relaying alone can never recover it.  The origin's next multicast
    /// exposes the per-origin sequence gap; member 1 NACKs it back and the
    /// retransmission closes the gap.  Without the NACK layer this test
    /// fails: member 1 ends the run having delivered only one message.
    #[test]
    fn reliable_multicast_recovers_fully_lost_message_via_nack() {
        let mut h = GcHarness::new(3);
        // Window 1: everything addressed to member 1 is lost.
        h.drop_to = vec![MemberId(1)];
        h.app_multicast(0, ServiceKind::Reliable, b"lost");
        // Window 2: the network heals; later traffic flows normally.
        h.drop_to.clear();
        h.app_multicast(0, ServiceKind::Reliable, b"heals");

        for m in 0..3 {
            let idx = h.index_of(MemberId(m));
            let mut payloads: Vec<&[u8]> = h.machines[idx]
                .delivered()
                .iter()
                .filter(|d| d.service == ServiceKind::Reliable)
                .map(|d| d.payload.as_slice())
                .collect();
            payloads.sort();
            assert_eq!(
                payloads,
                vec![b"heals".as_slice(), b"lost".as_slice()],
                "member {m} must deliver both messages"
            );
        }
        // The recovery actually went through the NACK path.
        let idx1 = h.index_of(MemberId(1));
        assert_eq!(h.machines[idx1].message_counts().get("nack"), None);
        assert!(
            *h.machines[h.index_of(MemberId(0))]
                .message_counts()
                .get("nack")
                .unwrap_or(&0)
                > 0,
            "origin must have answered a NACK"
        );
    }

    #[test]
    fn causal_and_unreliable_multicast_deliver() {
        let mut h = GcHarness::new(3);
        h.app_multicast(0, ServiceKind::Causal, b"c1");
        h.app_multicast(1, ServiceKind::Unreliable, b"u1");
        for m in 0..3 {
            let idx = h.index_of(MemberId(m));
            let services: Vec<ServiceKind> = h.machines[idx]
                .delivered()
                .iter()
                .map(|d| d.service)
                .collect();
            assert!(services.contains(&ServiceKind::Causal), "member {m}");
            assert!(services.contains(&ServiceKind::Unreliable), "member {m}");
        }
    }

    #[test]
    fn suspicion_installs_view_and_releases_pending_messages() {
        let mut h = GcHarness::new(3);
        // Member 2 "crashes" before acknowledging: simulate by removing its
        // machine from the routing (we simply never let it speak again) and
        // telling members 0 and 1 to suspect it.
        h.app_multicast(0, ServiceKind::SymmetricTotal, b"before");
        h.suspect(0, 2);
        h.suspect(1, 2);
        assert_eq!(h.machines[0].view().id, 1);
        assert_eq!(h.machines[1].view().id, 1);
        assert!(!h.machines[0].view().contains(MemberId(2)));
        assert_eq!(h.machines[0].views_delivered(), &[1]);
        // New multicasts among the surviving members still order.
        h.app_multicast(1, ServiceKind::SymmetricTotal, b"after");
        let d0 = h.delivered_orders(0);
        let d1 = h.delivered_orders(1);
        assert_eq!(d0, d1);
        assert_eq!(d0.len(), 2);
    }

    #[test]
    fn suspicion_gossip_propagates_view_change() {
        let mut h = GcHarness::new(4);
        // Only member 0's suspector fires; the Suspect notice must bring
        // everyone else to the same view.
        h.suspect(0, 3);
        for m in 0..3 {
            let idx = h.index_of(MemberId(m));
            assert_eq!(h.machines[idx].view().id, 1, "member {m}");
            assert!(!h.machines[idx].view().contains(MemberId(3)));
        }
    }

    #[test]
    fn symmetric_is_more_message_intensive_than_asymmetric() {
        let mut sym = GcHarness::new(5);
        let mut asym = GcHarness::new(5);
        for sender in 0..5 {
            sym.app_multicast(sender, ServiceKind::SymmetricTotal, b"x");
            asym.app_multicast(sender, ServiceKind::AsymmetricTotal, b"x");
        }
        let count = |h: &GcHarness| -> u64 {
            h.machines
                .iter()
                .map(|m| m.message_counts().values().sum::<u64>())
                .sum()
        };
        assert!(
            count(&sym) > count(&asym),
            "symmetric ({}) should exceed asymmetric ({})",
            count(&sym),
            count(&asym)
        );
    }

    #[test]
    fn malformed_inputs_are_ignored() {
        let group = vec![MemberId(0), MemberId(1)];
        let mut gc = GcMachine::new(GcConfig::new(MemberId(0), group).with_costs(GcCosts::free()));
        assert!(gc
            .handle(&MachineInput::from_app(vec![0xff, 0x01]))
            .is_empty());
        assert!(gc
            .handle(&MachineInput::from_peer(MemberId(1), vec![0xff]))
            .is_empty());
        assert!(gc.handle(&MachineInput::from_env(vec![0xff])).is_empty());
    }

    #[test]
    fn ping_is_answered_with_pong() {
        let group = vec![MemberId(0), MemberId(1)];
        let mut gc = GcMachine::new(GcConfig::new(MemberId(0), group).with_costs(GcCosts::free()));
        let ping = GcMessage::Ping {
            from: MemberId(1),
            nonce: 7,
        }
        .to_wire();
        let out = gc.handle(&MachineInput::from_peer(MemberId(1), ping));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, Endpoint::Peer(MemberId(1)));
        let pong = GcMessage::from_wire(&out[0].bytes).unwrap();
        assert_eq!(
            pong,
            GcMessage::Pong {
                from: MemberId(0),
                nonce: 7
            }
        );
    }

    #[test]
    fn gc_machine_is_deterministic() {
        let group: Vec<MemberId> = (0..3).map(MemberId).collect();
        let make = || {
            GcMachine::new(GcConfig::new(MemberId(0), group.clone()).with_costs(GcCosts::free()))
        };
        let inputs = vec![
            MachineInput::from_app(
                AppRequest {
                    service: ServiceKind::SymmetricTotal,
                    payload: b"a".to_vec(),
                }
                .to_wire(),
            ),
            MachineInput::from_peer(
                MemberId(1),
                GcMessage::Data {
                    origin: MemberId(1),
                    seq: 0,
                    ts: 1,
                    vc: vec![],
                    service: ServiceKind::SymmetricTotal,
                    payload: b"b".to_vec(),
                }
                .to_wire(),
            ),
            MachineInput::from_env(ControlInput::Suspect(MemberId(2)).to_wire()),
        ];
        assert!(fs_smr::machine::check_determinism(make, &inputs));
    }

    #[test]
    fn processing_cost_scales_with_size() {
        let group = vec![MemberId(0)];
        let gc = GcMachine::new(GcConfig::new(MemberId(0), group));
        let small = gc.processing_cost(&MachineInput::from_app(vec![0; 3]));
        let large = gc.processing_cost(&MachineInput::from_app(vec![0; 10_000]));
        assert!(large > small);
        assert!(gc.name().contains("newtop-gc"));
    }
}
