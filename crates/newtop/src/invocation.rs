//! The invocation layer: marshalling between the application and the GC
//! object.
//!
//! In NewTOP the invocation service "allows the application to specify the
//! type of NewTOP service needed and marshals a multicast message" into a
//! generic CORBA `any`; at the destination it unmarshals the delivered value
//! and hands it to the client application (§3).  Here the generic container
//! is the canonical wire encoding of [`AppRequest`] / [`Upcall`].

use fs_common::codec::Wire;
use fs_common::error::{CodecError, Result};
use fs_common::{Bytes, Error};

use crate::message::{AppRequest, ServiceKind, Upcall};

/// The invocation service of one NewTOP service object.
///
/// Stateless apart from counters; one instance per application process.
#[derive(Debug, Clone, Default)]
pub struct InvocationService {
    marshalled: u64,
    unmarshalled: u64,
    malformed: u64,
}

impl InvocationService {
    /// Creates an invocation service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marshals an application payload into the request submitted to the GC
    /// object.
    pub fn marshal(&mut self, service: ServiceKind, payload: Vec<u8>) -> Bytes {
        self.marshalled += 1;
        AppRequest { service, payload }.to_wire()
    }

    /// Unmarshals a delivery received from the GC object.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] when the bytes are not a valid upcall (which
    /// can only happen if the middleware below is faulty).
    pub fn unmarshal(&mut self, bytes: &[u8]) -> Result<Upcall> {
        match Upcall::from_wire(bytes) {
            Ok(upcall) => {
                self.unmarshalled += 1;
                Ok(upcall)
            }
            Err(e) => {
                self.malformed += 1;
                Err(Error::Codec(e))
            }
        }
    }

    /// Number of requests marshalled so far.
    pub fn marshalled(&self) -> u64 {
        self.marshalled
    }

    /// Number of upcalls unmarshalled so far.
    pub fn unmarshalled(&self) -> u64 {
        self.unmarshalled
    }

    /// Number of malformed deliveries rejected so far.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }
}

/// Convenience free function: marshal a request without tracking counters.
pub fn marshal_request(service: ServiceKind, payload: Vec<u8>) -> Bytes {
    AppRequest { service, payload }.to_wire()
}

/// Convenience free function: unmarshal an upcall without tracking counters.
///
/// # Errors
///
/// Returns the underlying [`CodecError`] when the bytes are malformed.
pub fn unmarshal_upcall(bytes: &[u8]) -> std::result::Result<Upcall, CodecError> {
    Upcall::from_wire(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::AppDeliver;
    use fs_common::id::MemberId;

    #[test]
    fn marshal_unmarshal_round_trip() {
        let mut inv = InvocationService::new();
        let req_bytes = inv.marshal(ServiceKind::SymmetricTotal, b"order me".to_vec());
        let req = AppRequest::from_wire(&req_bytes).unwrap();
        assert_eq!(req.service, ServiceKind::SymmetricTotal);
        assert_eq!(req.payload, b"order me");

        let upcall = Upcall::Deliver(AppDeliver {
            origin: MemberId(1),
            seq: 0,
            order: 0,
            service: ServiceKind::SymmetricTotal,
            payload: b"order me".to_vec(),
        });
        let up = inv.unmarshal(&upcall.to_wire()).unwrap();
        assert_eq!(up, upcall);
        assert_eq!(inv.marshalled(), 1);
        assert_eq!(inv.unmarshalled(), 1);
        assert_eq!(inv.malformed(), 0);
    }

    #[test]
    fn malformed_upcall_is_counted_and_rejected() {
        let mut inv = InvocationService::new();
        assert!(inv.unmarshal(&[0xde, 0xad, 0xbe, 0xef]).is_err());
        assert_eq!(inv.malformed(), 1);
    }

    #[test]
    fn free_functions_agree_with_service() {
        let a = marshal_request(ServiceKind::Causal, vec![1, 2]);
        let mut inv = InvocationService::new();
        let b = inv.marshal(ServiceKind::Causal, vec![1, 2]);
        assert_eq!(a, b);
        assert!(unmarshal_upcall(&[1]).is_err());
    }
}
