//! # fs-newtop
//!
//! A from-scratch implementation of the **NewTOP** group-communication
//! service — the crash-tolerant, partitionable, CORBA-based middleware that
//! the paper extends into FS-NewTOP.  It provides:
//!
//! * the deterministic **GC machine** ([`gc::GcMachine`]) composing symmetric
//!   total order, asymmetric (sequencer) total order, causal order, reliable
//!   and simple multicast, and partitionable membership;
//! * the **invocation layer** ([`invocation`]) that marshals application
//!   payloads, mirroring NewTOP's CORBA `any` marshalling;
//! * the timeout-based **failure suspector** ([`suspector`]) whose (possibly
//!   false) suspicions drive view changes in the crash-tolerant deployment;
//! * the **NSO adapter** ([`nso::NsoActor`]) that hosts the GC machine on a
//!   simulated or threaded node — the baseline system measured in the paper;
//! * the **application workload process** ([`app::AppProcess`]) used by the
//!   benchmark harness to reproduce Figures 6–8.
//!
//! Because the GC machine is a deterministic state machine, the `failsignal`
//! crate can wrap the *same* object into a fail-signal pair to obtain
//! FS-NewTOP with no change to this crate — precisely the structured reuse
//! the paper advocates.
//!
//! ## Example: two members agree on a total order
//!
//! ```
//! use fs_common::codec::Wire;
//! use fs_common::id::MemberId;
//! use fs_newtop::gc::{GcConfig, GcCosts, GcMachine};
//! use fs_newtop::message::{AppRequest, ServiceKind};
//! use fs_smr::machine::{DeterministicMachine, Endpoint, MachineInput};
//!
//! let group: Vec<MemberId> = (0..2).map(MemberId).collect();
//! let mut a = GcMachine::new(GcConfig::new(MemberId(0), group.clone()).with_costs(GcCosts::free()));
//! let mut b = GcMachine::new(GcConfig::new(MemberId(1), group).with_costs(GcCosts::free()));
//!
//! // Member 0 multicasts through the symmetric total-order service.
//! let request = AppRequest { service: ServiceKind::SymmetricTotal, payload: b"hello".to_vec() };
//! let out_a = a.handle(&MachineInput::from_app(request.to_wire()));
//!
//! // Relay member 0's data multicast to member 1 and the acknowledgement back.
//! let data = out_a.iter().find(|o| o.dest == Endpoint::Broadcast).unwrap();
//! let out_b = b.handle(&MachineInput::from_peer(MemberId(0), data.bytes.clone()));
//! let ack = out_b.iter().find(|o| o.dest == Endpoint::Broadcast).unwrap();
//! a.handle(&MachineInput::from_peer(MemberId(1), ack.bytes.clone()));
//!
//! // Both members have now delivered the message in the same order.
//! assert_eq!(a.delivered().len(), 1);
//! assert_eq!(b.delivered().len(), 1);
//! assert_eq!(a.delivered()[0].payload, b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod causal;
pub mod gc;
pub mod invocation;
pub mod message;
pub mod nso;
pub mod reliable;
pub mod suspector;
pub mod total_asym;
pub mod total_sym;
pub mod view;

pub use app::{AppProcess, TrafficConfig};
pub use gc::{GcConfig, GcCosts, GcMachine};
pub use invocation::InvocationService;
pub use message::{
    AppDeliver, AppRequest, ControlInput, GcMessage, ServiceKind, Upcall, ViewDeliver,
};
pub use nso::{AddressBook, NsoActor};
pub use suspector::{PingSuspector, SuspectorConfig};
pub use view::{MembershipState, View};
