//! Vendored, minimal property-testing harness standing in for `proptest`.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! small API-compatible subset: the [`proptest!`] macro, [`Strategy`]
//! implementations for integer ranges, `any::<T>()`, tuples, string
//! patterns of the form `".{lo,hi}"`, and [`collection::vec`].  Generation
//! is fully deterministic (seeded per test case), which suits this suite's
//! reproducibility goals; shrinking is not implemented — on failure the
//! harness reports the exact failing inputs via the panic message of the
//! inner assertion macros.

use std::ops::Range;

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6A09_E667_F3BC_C908,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Widening multiply keeps the distribution close enough to uniform
        // for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of an output type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                (self.start as u64 + rng.below(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;
    fn new_value(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn new_value(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

/// Types with a canonical "arbitrary" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// String pattern strategy: supports `".{lo,hi}"` (a printable-ASCII string
/// of length in `[lo, hi]`); any other pattern generates the literal text.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        if let Some((lo, span)) = parse_dot_repeat(self) {
            let len = lo + rng.below(span + 1) as usize;
            (0..len)
                .map(|_| char::from(b' ' + rng.below(95) as u8))
                .collect()
        } else {
            (*self).to_owned()
        }
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, u64)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: u64 = hi.trim().parse().ok()?;
    (hi >= lo as u64).then_some((lo, hi - lo as u64))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The permitted sizes of a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property, reporting the property inputs on
/// failure via the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                // Mix the property name into the seed so sibling properties
                // explore different parts of the input space.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                let mut rng = $crate::TestRng::new(seed ^ (case as u64) << 1);
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// The usual glob import: strategies, config, and assertion macros.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in 1usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_patterns(s in ".{0,8}", (a, b) in (0u32..4, 0u32..4)) {
            prop_assert!(s.len() <= 8);
            prop_assert!(a < 4 && b < 4);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut r1 = TestRng::new(7);
        let mut r2 = TestRng::new(7);
        for _ in 0..32 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}
