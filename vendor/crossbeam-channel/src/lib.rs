//! Vendored, minimal subset of `crossbeam-channel` used by `fs-simnet`'s
//! threaded runtime, implemented over `std::sync::mpsc`.
//!
//! Only the unbounded-channel surface the suite uses is provided:
//! [`unbounded`], cloneable [`Sender`]s, and a [`Receiver`] supporting
//! `recv`/`recv_timeout`.

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

use std::sync::mpsc;
use std::time::Duration;

/// The sending half of an unbounded channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends `value`, failing only when the receiver has been dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] holding the rejected value when the channel is
    /// disconnected.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value)
    }
}

/// The receiving half of an unbounded channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv()
    }

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns [`RecvTimeoutError::Timeout`] on expiry and
    /// [`RecvTimeoutError::Disconnected`] when every sender has been dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] when no message is waiting and
    /// [`TryRecvError::Disconnected`] when every sender has been dropped.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv()
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_recv() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(1)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(1)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
    }
}
