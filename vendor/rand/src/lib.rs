//! Vendored, minimal subset of the `rand` crate traits used by `fs-common`.
//!
//! Only the trait surface is provided (`RngCore`, `SeedableRng`, `Rng`);
//! the suite supplies its own deterministic generator (`fs_common::rng::DetRng`).

use std::fmt;

/// Error type for fallible RNG operations (never produced by this suite's
/// deterministic generators, but part of the `RngCore` contract).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number-generator interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    ///
    /// # Errors
    ///
    /// Implementations backed by external entropy may fail; deterministic
    /// generators never do.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` convenience seed.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bytes = state.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" distribution of this shim.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
    i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64, usize => next_u64,
    isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn gen_draws_values() {
        let mut rng = Lcg(42);
        let a: u32 = rng.gen();
        let b: u32 = rng.gen();
        assert_ne!(a, b);
    }
}
