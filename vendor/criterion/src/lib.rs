//! Vendored, minimal benchmark harness standing in for `criterion`.
//!
//! The build environment has no crates.io access, so this workspace ships a
//! small API-compatible subset: `criterion_group!`/`criterion_main!`,
//! benchmark groups with `bench_function`/`bench_with_input`, and a
//! [`Bencher`] whose `iter` measures wall-clock time over a fixed number of
//! iterations and prints a per-benchmark summary line.  No statistical
//! analysis or HTML reports are produced.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
}

/// Identifier combining a function name and an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures and measures their wall-clock time.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of iterations per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let per_iter = if bencher.iterations > 0 {
            bencher.elapsed.as_secs_f64() / bencher.iterations as f64
        } else {
            0.0
        };
        let mut line = format!(
            "{}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            id,
            per_iter * 1e3,
            bencher.iterations
        );
        if let Some(t) = self.throughput {
            match t {
                Throughput::Bytes(bytes) if per_iter > 0.0 => {
                    line.push_str(&format!(
                        ", {:.1} MiB/s",
                        bytes as f64 / per_iter / (1024.0 * 1024.0)
                    ));
                }
                Throughput::Elements(n) if per_iter > 0.0 => {
                    line.push_str(&format!(", {:.0} elem/s", n as f64 / per_iter));
                }
                _ => {}
            }
        }
        println!("{line}");
        let _ = &self.criterion;
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        routine: R,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, routine);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(8));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 3)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
