//! Vendored, minimal subset of the `bytes` crate used by `fs-common`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a small API-compatible shim: `BytesMut` is a growable
//! byte buffer, `Bytes` an immutable (cheaply cloneable) view, and the
//! `Buf`/`BufMut` traits provide the little-endian cursor operations the
//! canonical wire codec relies on.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Returns the buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

// Cross-type equality, mirroring the upstream crate: lets tests compare a
// `Bytes` payload against slices, arrays and vectors without conversions.
impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other[..]
    }
}

/// Growable byte buffer with little-endian append operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Returns the number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }

    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Append operations for growable byte buffers.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Cursor-style read operations over a byte source.
///
/// Each call consumes bytes from the front of the source.
///
/// # Panics
///
/// All getters panic when the source holds fewer bytes than requested,
/// matching the upstream crate's contract.
pub trait Buf {
    /// Returns the number of bytes left.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u16_le(2);
        buf.put_u32_le(3);
        buf.put_u64_le(4);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut view: &[u8] = &frozen;
        assert_eq!(view.get_u8(), 1);
        assert_eq!(view.get_u16_le(), 2);
        assert_eq!(view.get_u32_le(), 3);
        assert_eq!(view.get_u64_le(), 4);
        assert_eq!(view, b"xy");
    }
}
