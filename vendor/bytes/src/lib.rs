//! Vendored, minimal subset of the `bytes` crate used by `fs-common`.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a small API-compatible shim: `BytesMut` is a growable
//! byte buffer, `Bytes` an immutable (cheaply cloneable) view, and the
//! `Buf`/`BufMut` traits provide the little-endian cursor operations the
//! canonical wire codec relies on.
//!
//! Like the upstream crate, a [`Bytes`] is a *view* — an `(offset, len)`
//! window into refcount-shared storage.  [`Bytes::slice`] and
//! [`Bytes::slice_ref`] produce sub-views that share the parent's storage
//! without copying a single payload byte; this is what the suite's zero-copy
//! receive path (`Decoder::get_bytes_shared`) is built on.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer: a view into shared storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Returns the buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of `self` covering `range`, sharing the same
    /// storage (a refcount bump, no copy).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted, exactly like
    /// slicing a `&[u8]`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n.checked_add(1).expect("range end overflows usize"),
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end,
            "range start must not be greater than end: {start} <= {end}",
        );
        assert!(end <= self.len, "range end out of bounds: {end} <= {}", self.len);
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Returns a view corresponding to `subset`, which must be a sub-slice
    /// of `self` (obtained via `Deref`/`AsRef`).  Shares storage, no copy.
    ///
    /// # Panics
    ///
    /// Panics when `subset` is not contained in `self`.
    pub fn slice_ref(&self, subset: &[u8]) -> Self {
        // An empty slice carries no usable address; return an empty view.
        if subset.is_empty() {
            return Bytes::new();
        }
        let base = self.as_slice().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub + subset.len() <= base + self.len,
            "slice_ref: subset is not contained in this Bytes"
        );
        let start = sub - base;
        self.slice(start..start + subset.len())
    }

    /// True when `self` and `other` are views into the same shared storage
    /// (shim extension, used by the zero-copy assertions in tests).
    pub fn shares_storage(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// The number of live `Bytes` views sharing this storage (shim
    /// extension, used by the refcount assertions in tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

// Cross-type equality, mirroring the upstream crate: lets tests compare a
// `Bytes` payload against slices, arrays and vectors without conversions.
impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == *other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == *other.as_slice()
    }
}

/// Growable byte buffer with little-endian append operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Returns the number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Append operations for growable byte buffers.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Cursor-style read operations over a byte source.
///
/// Each call consumes bytes from the front of the source.
///
/// # Panics
///
/// All getters panic when the source holds fewer bytes than requested,
/// matching the upstream crate's contract.
pub trait Buf {
    /// Returns the number of bytes left.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u16_le(2);
        buf.put_u32_le(3);
        buf.put_u64_le(4);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut view: &[u8] = &frozen;
        assert_eq!(view.get_u8(), 1);
        assert_eq!(view.get_u16_le(), 2);
        assert_eq!(view.get_u32_le(), 3);
        assert_eq!(view.get_u64_le(), 4);
        assert_eq!(view, b"xy");
    }

    #[test]
    fn slice_shares_storage_without_copying() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let count_before = b.ref_count();
        let s = b.slice(2..6);
        assert_eq!(s, [2, 3, 4, 5]);
        assert!(s.shares_storage(&b));
        assert_eq!(b.ref_count(), count_before + 1);
        // A slice of a slice still points at the original storage.
        let ss = s.slice(1..3);
        assert_eq!(ss, [3, 4]);
        assert!(ss.shares_storage(&b));
        // Open-ended and full ranges.
        assert_eq!(b.slice(..), b);
        assert_eq!(b.slice(6..), [6, 7]);
        assert_eq!(b.slice(..2), [0, 1]);
        assert_eq!(b.slice(2..=3), [2, 3]);
    }

    #[test]
    fn slice_ref_recovers_the_view() {
        let b = Bytes::from(vec![9, 8, 7, 6, 5]);
        let sub = &b[1..4];
        let view = b.slice_ref(sub);
        assert_eq!(view, [8, 7, 6]);
        assert!(view.shares_storage(&b));
        assert!(!b.slice_ref(&[]).shares_storage(&b));
        assert!(b.slice_ref(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    #[should_panic(expected = "start must not be greater")]
    fn inverted_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(2..1);
    }

    #[test]
    #[should_panic(expected = "not contained")]
    fn foreign_slice_ref_panics() {
        let b = Bytes::from(vec![1, 2, 3]);
        let other = [4u8, 5, 6];
        b.slice_ref(&other);
    }

    #[test]
    fn views_compare_and_hash_by_contents() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Bytes::from(vec![0, 1, 2, 3]).slice(1..3);
        let b = Bytes::from(vec![9, 1, 2, 9]).slice(1..3);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let hash = |x: &Bytes| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        assert!(Bytes::from(vec![1]) < Bytes::from(vec![2]));
    }
}
