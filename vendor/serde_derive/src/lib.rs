//! Vendored `#[derive(Serialize, Deserialize)]` macros for the minimal
//! serde shim.
//!
//! The build environment has no crates.io access, so this derive is written
//! directly against `proc_macro` (no `syn`/`quote`).  It supports the item
//! shapes used in this workspace: unit/tuple/named structs, enums with
//! unit/tuple/named variants (with optional discriminants), and simple
//! unbounded type parameters (`struct Foo<T> { .. }`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct TypeDef {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

/// Derives `serde::Serialize` (value-tree model) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_serialize(&def)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree model) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Rejects `#[serde(...)]` attributes: the shim does not implement their
/// semantics, and silently ignoring them would corrupt serialized output
/// without any diagnostic.  `attr` is the `[...]` group of a skipped
/// attribute.
fn reject_serde_attr(attr: &TokenTree) {
    if let TokenTree::Group(g) = attr {
        if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
            if id.to_string() == "serde" {
                panic!(
                    "the vendored serde shim does not support #[serde(...)] attributes \
                     (found `#[{}]`); remove the attribute or extend vendor/serde_derive",
                    g.stream()
                );
            }
        }
    }
}

fn parse(input: TokenStream) -> TypeDef {
    let mut toks = input.into_iter().peekable();

    // Skip attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(attr) = toks.next() {
                    reject_serde_attr(&attr); // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let item_kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };

    // Generic parameter list: collect bare type parameter identifiers.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            toks.next();
            let mut depth = 1usize;
            let mut at_param_start = true;
            while depth > 0 {
                match toks.next().expect("unclosed generic parameter list") {
                    TokenTree::Punct(p) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 1 => at_param_start = true,
                        _ => at_param_start = false,
                    },
                    TokenTree::Ident(id) => {
                        if depth == 1 && at_param_start && id.to_string() != "const" {
                            generics.push(id.to_string());
                        }
                        at_param_start = false;
                    }
                    _ => at_param_start = false,
                }
            }
        }
    }

    let kind = match item_kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for item kind `{other}`"),
    };

    TypeDef {
        name,
        generics,
        kind,
    }
}

/// Parses `a: T, pub b: U, ...`, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(attr) = toks.next() {
                        reject_serde_attr(&attr);
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("expected field name, found {tree:?}")
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        skip_type_until_comma(&mut toks);
    }
    fields
}

/// Consumes a type expression, stopping after the `,` that ends it (or at
/// end of stream).  Tracks `<...>` nesting so commas inside generics do not
/// terminate the field.
fn skip_type_until_comma(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle = 0usize;
    let mut prev_dash = false;
    while let Some(tree) = toks.next() {
        match &tree {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                match c {
                    '<' => angle += 1,
                    '>' if prev_dash => {} // `->` in an fn type
                    '>' => angle = angle.saturating_sub(1),
                    ',' if angle == 0 => return,
                    _ => {}
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0usize;
    while toks.peek().is_some() {
        count += 1;
        // Skip attributes and visibility, then the type.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(attr) = toks.next() {
                        reject_serde_attr(&attr);
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        skip_type_until_comma(&mut toks);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                if let Some(attr) = toks.next() {
                    reject_serde_attr(&attr);
                }
            } else {
                break;
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(name) = tree else {
            panic!("expected variant name, found {tree:?}")
        };
        let mut kind = VariantKind::Unit;
        if let Some(TokenTree::Group(g)) = toks.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    kind = VariantKind::Tuple(count_top_level_fields(g.stream()));
                    toks.next();
                }
                Delimiter::Brace => {
                    kind = VariantKind::Named(parse_named_fields(g.stream()));
                    toks.next();
                }
                _ => {}
            }
        }
        // Skip an optional `= discriminant` and the trailing comma.
        let mut angle = 0usize;
        for tree in toks.by_ref() {
            match tree {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle = angle.saturating_sub(1),
                    ',' if angle == 0 => break,
                    _ => {}
                },
                _ => {}
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(def: &TypeDef, trait_name: &str) -> String {
    if def.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", def.name)
    } else {
        let bounded: Vec<String> = def
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let bare = def.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{bare}>",
            bounded.join(", "),
            def.name
        )
    }
}

fn gen_serialize(def: &TypeDef) -> String {
    let body = match &def.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                let ty = &def.name;
                match &v.kind {
                    VariantKind::Unit => arms.push(format!(
                        "{ty}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push(format!(
                            "{ty}::{vn}({binds}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(vec![{items}]))]),",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push(format!(
                            "{ty}::{vn} {{ {fields} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(vec![{items}]))]),",
                            fields = fields.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(def, "Serialize")
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let ty = &def.name;
    let body = match &def.kind {
        Kind::UnitStruct => format!(
            "match v {{ ::serde::Value::Null => ::core::result::Result::Ok({ty}), _ => ::core::result::Result::Err(::serde::Error::type_mismatch(\"{ty}\")) }}"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(::serde::seq_field(s, {i}, \"{ty}\")?)?"
                    )
                })
                .collect();
            format!(
                "let s = ::serde::value_as_seq(v, \"{ty}\")?; let _ = s; ::core::result::Result::Ok({ty}({}))",
                items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_field(m, \"{f}\", \"{ty}\")?)?"
                    )
                })
                .collect();
            format!(
                "let m = ::serde::value_as_map(v, \"{ty}\")?; let _ = m; ::core::result::Result::Ok({ty} {{ {} }})",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for var in variants {
                let vn = &var.name;
                match &var.kind {
                    VariantKind::Unit => unit_arms.push(format!(
                        "\"{vn}\" => ::core::result::Result::Ok({ty}::{vn}),"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(::serde::seq_field(s, {i}, \"{ty}::{vn}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{ let s = ::serde::value_as_seq(inner, \"{ty}::{vn}\")?; ::core::result::Result::Ok({ty}::{vn}({items})) }}",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::map_field(m, \"{f}\", \"{ty}::{vn}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "\"{vn}\" => {{ let m = ::serde::value_as_map(inner, \"{ty}::{vn}\")?; ::core::result::Result::Ok({ty}::{vn} {{ {items} }}) }}",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{ \
                   ::serde::Value::Str(tag) => match tag.as_str() {{ {unit_arms} other => ::core::result::Result::Err(::serde::Error::unknown_variant(other, \"{ty}\")) }}, \
                   ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
                     let (tag, inner) = &entries[0]; let _ = inner; \
                     match tag.as_str() {{ {data_arms} other => ::core::result::Result::Err(::serde::Error::unknown_variant(other, \"{ty}\")) }} \
                   }}, \
                   _ => ::core::result::Result::Err(::serde::Error::type_mismatch(\"{ty}\")) \
                 }}",
                unit_arms = unit_arms.join(" "),
                data_arms = data_arms.join(" ")
            )
        }
    };
    format!(
        "{header} {{ fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ {body} }} }}",
        header = impl_header(def, "Deserialize")
    )
}
