//! Vendored, minimal JSON backend for the workspace's serde shim.
//!
//! Renders the shim's [`serde::Value`] tree as JSON text and parses JSON
//! text back into it, providing the `to_string` / `to_string_pretty` /
//! `from_str` entry points the benchmark reports use.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Error produced when JSON text is malformed or does not match the
/// requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for values produced by the shim's `Serialize` impls; the
/// `Result` mirrors the upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, indented JSON.
///
/// # Errors
///
/// Never fails for values produced by the shim's `Serialize` impls.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] when the text is not valid JSON or does not have
/// the shape `T` expects.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_sequence(out, items.iter(), items.len(), indent, level, false),
        Value::Map(entries) => {
            write_map(out, entries, indent, level);
        }
    }
}

fn write_sequence<'v>(
    out: &mut String,
    items: impl Iterator<Item = &'v Value>,
    len: usize,
    indent: Option<usize>,
    level: usize,
    _map: bool,
) {
    if len == 0 {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_value(out, item, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, level: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_string(out, key);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, value, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(found) if found == b => Ok(()),
            other => Err(Error::new(format!(
                "expected `{}` at offset {}, found {other:?}",
                b as char,
                self.pos.saturating_sub(1)
            ))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{kw}` at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Seq(items)),
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.bump();
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.bump();
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Map(entries)),
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let unit = self.parse_hex4()?;
                        let code = match unit {
                            // High surrogate: must be followed by `\u` and a
                            // low surrogate, together naming one scalar value.
                            0xD800..=0xDBFF => {
                                if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                    return Err(Error::new(
                                        "unpaired high surrogate in \\u escape",
                                    ));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::new("invalid low surrogate in \\u escape"));
                                }
                                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                            }
                            0xDC00..=0xDFFF => {
                                return Err(Error::new("unpaired low surrogate in \\u escape"))
                            }
                            scalar => scalar,
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?,
                        );
                    }
                    other => return Err(Error::new(format!("invalid escape {other:?}"))),
                },
                Some(byte) => {
                    // Collect the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let width = utf8_width(byte);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::new("invalid \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let json = to_string(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn round_trips_floats_and_strings() {
        let json = to_string(&12.5f64).unwrap();
        assert_eq!(json, "12.5");
        let back: f64 = from_str(&json).unwrap();
        assert!((back - 12.5).abs() < 1e-12);

        let json = to_string(&"a\"b\\c\nd".to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn pretty_output_is_indented() {
        let json = to_string_pretty(&vec![1u8]).unwrap();
        assert_eq!(json, "[\n  1\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("nope").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }

    #[test]
    fn parses_surrogate_pairs() {
        let s: String = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(s, "\u{1F600}");
        let raw: String = from_str("\"😀\"").unwrap();
        assert_eq!(raw, "\u{1F600}");
        assert!(
            from_str::<String>(r#""\ud83d""#).is_err(),
            "unpaired high surrogate"
        );
        assert!(
            from_str::<String>(r#""\ude00""#).is_err(),
            "unpaired low surrogate"
        );
        assert!(
            from_str::<String>(r#""\ud83dA""#).is_err(),
            "bad low surrogate"
        );
    }
}
