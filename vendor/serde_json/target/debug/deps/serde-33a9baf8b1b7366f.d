/root/repo/vendor/serde_json/target/debug/deps/serde-33a9baf8b1b7366f.d: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde-33a9baf8b1b7366f.rlib: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde-33a9baf8b1b7366f.rmeta: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde/src/lib.rs:
