/root/repo/vendor/serde_json/target/debug/deps/serde_json-5fd53ced74eec0fb.d: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/serde_json-5fd53ced74eec0fb: src/lib.rs

src/lib.rs:
