/root/repo/vendor/serde_json/target/debug/deps/serde_derive-276ed4c30265bf30.d: /root/repo/vendor/serde_derive/src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde_derive-276ed4c30265bf30.so: /root/repo/vendor/serde_derive/src/lib.rs

/root/repo/vendor/serde_derive/src/lib.rs:
