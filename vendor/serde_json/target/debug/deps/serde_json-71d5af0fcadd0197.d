/root/repo/vendor/serde_json/target/debug/deps/serde_json-71d5af0fcadd0197.d: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde_json-71d5af0fcadd0197.rlib: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde_json-71d5af0fcadd0197.rmeta: src/lib.rs

src/lib.rs:
