//! Vendored, minimal serialization framework standing in for `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this simplified replacement: instead of serde's
//! visitor-based zero-copy data model, values are serialized into an owned
//! [`Value`] tree which back-ends (e.g. the vendored `serde_json`) render to
//! text.  The `#[derive(Serialize, Deserialize)]` macros are provided by the
//! sibling `serde_derive` crate and target this same trait surface.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate, JSON-like value tree all (de)serialization goes
/// through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`null`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (insertion order preserved).
    Map(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] cannot be interpreted as the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// The value had the wrong shape for `expected`.
    pub fn type_mismatch(expected: &str) -> Self {
        Error(format!("value does not have the shape of {expected}"))
    }

    /// A map was missing field `field`.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error(format!("missing field `{field}` while reading {ty}"))
    }

    /// An enum tag did not name a known variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{variant}` of {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads a value of this type out of `v`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code.
// ---------------------------------------------------------------------------

/// Interprets `v` as a map, or reports a shape mismatch for type `ty`.
///
/// # Errors
///
/// Returns an [`Error`] when `v` is not a [`Value::Map`].
pub fn value_as_map<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Map(m) => Ok(m),
        _ => Err(Error::type_mismatch(ty)),
    }
}

/// Interprets `v` as a sequence, or reports a shape mismatch for type `ty`.
///
/// # Errors
///
/// Returns an [`Error`] when `v` is not a [`Value::Seq`].
pub fn value_as_seq<'v>(v: &'v Value, ty: &str) -> Result<&'v [Value], Error> {
    match v {
        Value::Seq(s) => Ok(s),
        _ => Err(Error::type_mismatch(ty)),
    }
}

/// Looks up field `name` in a map produced by [`value_as_map`].
///
/// # Errors
///
/// Returns an [`Error`] when the field is absent.
pub fn map_field<'v>(m: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, Error> {
    m.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(name, ty))
}

/// Looks up element `index` in a sequence produced by [`value_as_seq`].
///
/// # Errors
///
/// Returns an [`Error`] when the sequence is too short.
pub fn seq_field<'v>(s: &'v [Value], index: usize, ty: &str) -> Result<&'v Value, Error> {
    s.get(index)
        .ok_or_else(|| Error::custom(format!("sequence too short for {ty}: no element {index}")))
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::type_mismatch("bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(Error::type_mismatch(stringify!($t))),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = u64::from_value(v)?;
        usize::try_from(raw).map_err(|_| Error::custom("integer out of range for usize"))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(Error::type_mismatch(stringify!($t))),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let raw = i64::from_value(v)?;
        isize::try_from(raw).map_err(|_| Error::custom("integer out of range for isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::type_mismatch("f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::type_mismatch("char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::type_mismatch("String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::type_mismatch("()")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        value_as_seq(v, "Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = value_as_seq(v, "tuple")?;
                Ok(($($t::from_value(seq_field(s, $i, "tuple")?)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // A deterministic order keeps serialized output stable; sort by the
        // serialized key's debug form.
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        value_as_seq(v, "HashMap")?
            .iter()
            .map(|entry| {
                let pair = value_as_seq(entry, "HashMap entry")?;
                Ok((
                    K::from_value(seq_field(pair, 0, "HashMap entry")?)?,
                    V::from_value(seq_field(pair, 1, "HashMap entry")?)?,
                ))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        value_as_seq(v, "BTreeMap")?
            .iter()
            .map(|entry| {
                let pair = value_as_seq(entry, "BTreeMap entry")?;
                Ok((
                    K::from_value(seq_field(pair, 0, "BTreeMap entry")?)?,
                    V::from_value(seq_field(pair, 1, "BTreeMap entry")?)?,
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let a: [u8; 3] = [4, 5, 6];
        assert_eq!(<[u8; 3]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn wrong_shape_is_reported() {
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(<[u8; 2]>::from_value(&vec![1u8].to_value()).is_err());
    }
}
